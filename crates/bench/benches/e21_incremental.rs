//! E21 — incremental evaluation under updates: delta-maintained indexes
//! and retained DP join tables vs full re-index + re-evaluation.
//!
//! The corpus is the 10^5-tuple warehouse of E18 ([`scale_corpus`]: three
//! dense fact relations plus the sparse selective relation `S`).  A
//! [`mutation_traffic`] stream applies ~1% churn per round — half
//! deletions, half insertions, support-preserving so every position
//! domain keeps its elements and the domain epoch never moves (the
//! steady-state regime the delta path is built for; domain-growing
//! updates are covered by the epoch tests in `cq-core`).
//!
//! Two paths answer the same decide+count workload after every round:
//!
//! * **delta** — [`Engine::apply_delta`] /
//!   [`Engine::apply_delta_chained`] maintain the cached
//!   [`StructureIndex`] in place (`O(delta)` per round, no structure
//!   copy), and `PreparedQuery::{decide,count}_via_tree` patch their
//!   retained per-bag join tables instead of recomputing them;
//! * **full** — the pre-incremental behaviour: rebuild the index from
//!   scratch and re-run freshly compiled programs over everything.
//!
//! Both query families of E18 run, timed separately.  The **selective**
//! family (every atom reads the sparse `S`) is where incremental
//! evaluation is designed to win — most rounds leave its DP bags
//! untouched or patch a handful of keys, while the full path re-indexes
//! 10^5 tuples to answer the same thing; its speedup is the gated
//! headline.  The **bulk** family joins the churned fact relations in
//! every bag, so its tables legitimately recompute each round and the
//! delta path can only save the re-index + recompile — reported for
//! context, not gated.
//!
//! Correctness is asserted before timing: the delta path's answer after
//! *every* round equals a fresh index + fresh compilation on the same
//! content (the in-bench differential oracle — `"agreement": 1.0` in the
//! JSON is asserted, not assumed), and the engine is grounded against
//! brute force on seeded induced subsamples of the final mutated corpus.
//! The timed delta sweeps are additionally asserted to perform **exactly
//! zero** index builds, metered by [`index_build_count`] (the bench is
//! single-threaded, so exact equality is safe here — unlike in
//! `cargo test`).
//!
//! Full mode writes the machine-readable `BENCH_E21.json` at the
//! repository root and asserts the 3x acceptance floor; quick mode
//! (`CQ_BENCH_QUICK=1`, the CI bench-smoke step) gates the measured
//! speedup against a generous 1.5x floor.

use cq_bench::{json_field_f64, median_time, quick_mode, timing_runs};
use cq_core::{DeltaReport, Engine, EngineConfig, PreparedQuery};
use cq_solver::{
    count_hom_via_tree_decomposition_indexed, hom_via_tree_decomposition_indexed, Nat,
};
use cq_structures::{
    count_homomorphisms_bruteforce, homomorphism_exists, index_build_count, DeltaBatch, Structure,
    StructureIndex,
};
use cq_workloads::{
    mutation_traffic, scale_corpus, scale_join_queries, selective_join_queries, subsample_database,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

const CORPUS_SEED: u64 = 0xE21;
const FACT_RELATIONS: usize = 3;
const ELEMS: usize = 4_000;
const FACT_TUPLES: usize = 35_500;
const SELECTIVE_TUPLES: usize = 100;
const FLOOR_TUPLES: usize = 100_000;
const CHURN: f64 = 0.01;

/// One decide + one count per plan, through the per-index compiled-program
/// cache and its retained DP tables.
fn warm_round(plans: &[PreparedQuery], index: &StructureIndex) -> Vec<(bool, Nat)> {
    plans
        .iter()
        .map(|plan| {
            (
                plan.decide_via_tree(index).exists,
                plan.count_via_tree(index).count,
            )
        })
        .collect()
}

/// The same workload through the free kernel entry points: fresh program
/// compilation and a full evaluation per call (the pre-incremental
/// behaviour, paired with an index rebuild by the caller).
fn fresh_round(plans: &[PreparedQuery], index: &StructureIndex) -> Vec<(bool, Nat)> {
    plans
        .iter()
        .map(|plan| {
            let decide = hom_via_tree_decomposition_indexed(
                plan.evaluated(),
                index,
                &plan.analysis().tree_decomposition,
            );
            let count = count_hom_via_tree_decomposition_indexed(
                plan.original(),
                index,
                &plan.counting_analysis().tree_decomposition,
            );
            (decide.exists, count.count)
        })
        .collect()
}

/// Run the whole mutation stream through the engine's delta path, timing
/// the rounds only (warm-up — the one initial index build and the program
/// compilations — happens before the clock starts).  Round 0 enters by
/// `&Structure`; every later round consumes the previous [`DeltaReport`],
/// so no caller-side handle forces a copy-on-write.
fn delta_sweep(
    config: &EngineConfig,
    db: &Structure,
    batches: &[DeltaBatch],
    plans: &[PreparedQuery],
) -> std::time::Duration {
    let engine = Engine::new(*config);
    let index0 = engine.instance_index(db);
    black_box(warm_round(plans, &index0));
    drop(index0);
    let builds_before = index_build_count();
    let start = Instant::now();
    let mut report: Option<DeltaReport> = None;
    for batch in batches {
        let next = match report.take() {
            None => engine.apply_delta(db, batch).expect("epoch-safe batch"),
            Some(prev) => engine
                .apply_delta_chained(prev, batch)
                .expect("epoch-safe batch"),
        };
        black_box(warm_round(plans, next.index()));
        report = Some(next);
    }
    let elapsed = start.elapsed();
    assert_eq!(
        index_build_count(),
        builds_before,
        "the timed delta sweep must perform exactly zero index builds"
    );
    elapsed
}

/// The full path over the same mutation stream: apply each batch to a bare
/// structure the naive way ([`Structure::apply_delta`], the reference
/// implementation a consumer without delta-maintained indexes uses), then
/// rebuild the index and recompile + re-evaluate every program.
fn full_sweep(
    db: &Structure,
    batches: &[DeltaBatch],
    plans: &[PreparedQuery],
) -> std::time::Duration {
    let mut base = db.clone();
    let start = Instant::now();
    for batch in batches {
        base.apply_delta(batch).expect("epoch-safe batch");
        let index = StructureIndex::new(&base);
        black_box(fresh_round(plans, &index));
    }
    start.elapsed()
}

struct Report {
    tuples: usize,
    rounds: usize,
    avg_round_ops: f64,
    /// `(family, delta ms/round, full ms/round, speedup)` rows; the
    /// selective row carries the gated headline speedup.
    rows: Vec<(&'static str, f64, f64, f64)>,
    oracle_comparisons: usize,
}

impl Report {
    fn selective_speedup(&self) -> f64 {
        self.rows[0].3
    }
}

fn run(config: &EngineConfig) -> Report {
    let db = scale_corpus(
        ELEMS,
        FACT_RELATIONS,
        FACT_TUPLES,
        SELECTIVE_TUPLES,
        CORPUS_SEED,
    );
    assert!(
        db.tuple_count() >= FLOOR_TUPLES,
        "corpus fell below the scale floor: {} < {FLOOR_TUPLES}",
        db.tuple_count()
    );
    let rounds = if quick_mode() { 6 } else { 16 };
    let batches = mutation_traffic(&db, rounds, CHURN, CORPUS_SEED);
    assert_eq!(batches.len(), rounds);
    let avg_round_ops = batches.iter().map(DeltaBatch::len).sum::<usize>() as f64 / rounds as f64;
    let selective_queries = selective_join_queries();
    let bulk_queries = scale_join_queries(FACT_RELATIONS);
    let queries: Vec<Structure> = selective_queries
        .iter()
        .chain(bulk_queries.iter())
        .cloned()
        .collect();
    let prepare = |qs: &[Structure]| -> Vec<PreparedQuery> {
        qs.iter()
            .map(|q| PreparedQuery::prepare(q, config))
            .collect()
    };
    let families: [(&'static str, Vec<PreparedQuery>); 2] = [
        ("selective", prepare(&selective_queries)),
        ("bulk", prepare(&bulk_queries)),
    ];
    let plans: Vec<PreparedQuery> = prepare(&queries);
    println!(
        "E21: {} elements, {} tuples | {rounds} rounds x ~{avg_round_ops:.0} tuple ops ({:.2}% churn) | {} plans",
        ELEMS,
        db.tuple_count(),
        100.0 * avg_round_ops / db.tuple_count() as f64,
        plans.len()
    );

    // ---- Reference sweep (untimed): per-round snapshots + delta answers.
    // Snapshot Arcs keep every post-round content alive for the full-path
    // sweeps; holding them makes these (untimed) rounds copy-on-write.
    let engine = Engine::new(*config);
    let mut snapshots: Vec<Arc<Structure>> = Vec::with_capacity(rounds);
    let mut delta_answers: Vec<Vec<(bool, Nat)>> = Vec::with_capacity(rounds);
    let mut report: Option<DeltaReport> = None;
    for batch in &batches {
        let next = match report.take() {
            None => engine.apply_delta(&db, batch).expect("epoch-safe batch"),
            Some(prev) => engine
                .apply_delta_chained(prev, batch)
                .expect("epoch-safe batch"),
        };
        assert!(!next.applied().is_noop(), "every round must change content");
        assert_eq!(
            next.domain_epoch(),
            0,
            "mutation_traffic must be support-preserving (no epoch bump)"
        );
        snapshots.push(Arc::clone(next.index().structure_arc()));
        delta_answers.push(warm_round(&plans, next.index()));
        report = Some(next);
    }
    drop(report);

    // ---- Differential oracle, re-run after every mutation round: the
    // delta-maintained answer equals a fresh index + fresh compilation on
    // the same content.
    let mut comparisons = 0usize;
    for (snap, answers) in snapshots.iter().zip(&delta_answers) {
        let fresh_index = StructureIndex::new(snap);
        let fresh = fresh_round(&plans, &fresh_index);
        for ((w, f), plan) in answers.iter().zip(&fresh).zip(&plans) {
            assert_eq!(w.0, f.0, "decide diverged: {:?}", plan.widths());
            assert_eq!(w.1, f.1, "count diverged: {:?}", plan.widths());
            comparisons += 2;
        }
    }
    // Ground the engine against brute force on induced subsamples of the
    // final mutated corpus (full-size brute force is infeasible; the
    // full-size agreement above closes the loop between the two paths).
    let last = snapshots.last().expect("at least one round");
    let cold = Engine::new(*config);
    for seed in 1..=3u64 {
        let slice = subsample_database(last, 40, seed);
        for q in &queries {
            assert_eq!(cold.solve(q, &slice).exists, homomorphism_exists(q, &slice));
            assert_eq!(
                cold.count_instance(q, &slice).count,
                count_homomorphisms_bruteforce(q, &slice)
            );
            comparisons += 2;
        }
    }
    println!("  oracle: {comparisons} comparisons, agreement 1.0 (asserted)");

    // ---- Cost split (informational): index maintenance vs evaluation.
    {
        let engine = Engine::new(*config);
        let index0 = engine.instance_index(&db);
        black_box(warm_round(&plans, &index0));
        drop(index0);
        let mut apply = std::time::Duration::ZERO;
        let mut eval = std::time::Duration::ZERO;
        let mut report: Option<DeltaReport> = None;
        for batch in &batches {
            let t = Instant::now();
            let next = match report.take() {
                None => engine.apply_delta(&db, batch).expect("epoch-safe batch"),
                Some(prev) => engine
                    .apply_delta_chained(prev, batch)
                    .expect("epoch-safe batch"),
            };
            apply += t.elapsed();
            let t = Instant::now();
            black_box(warm_round(&plans, next.index()));
            eval += t.elapsed();
            report = Some(next);
        }
        println!(
            "  cost split per round: index maintenance {:.3} ms | retained eval (all {} plans) {:.3} ms",
            apply.as_secs_f64() * 1e3 / rounds as f64,
            plans.len(),
            eval.as_secs_f64() * 1e3 / rounds as f64
        );
    }

    // ---- Timing: the whole stream, delta path vs full path, per family.
    // Every sweep applies the same mixed churn (deltas hit all relations —
    // the index maintenance cost is paid in full either way); what differs
    // per family is the evaluation workload riding on it.
    let runs = timing_runs(2, 3);
    let mut rows: Vec<(&'static str, f64, f64, f64)> = Vec::new();
    for (name, family) in &families {
        let delta = median_time(runs, || {
            black_box(delta_sweep(config, &db, &batches, family));
        });
        let full = median_time(runs, || {
            black_box(full_sweep(&db, &batches, family));
        });
        let delta_ms = delta.as_secs_f64() * 1e3 / rounds as f64;
        let full_ms = full.as_secs_f64() * 1e3 / rounds as f64;
        let speedup = full.as_secs_f64() / delta.as_secs_f64();
        println!(
            "  {name:<9} per round: delta {delta_ms:>8.3} ms | full re-index+re-eval {full_ms:>8.3} ms | speedup {speedup:.2}x"
        );
        rows.push((*name, delta_ms, full_ms, speedup));
    }

    Report {
        tuples: db.tuple_count(),
        rounds,
        avg_round_ops,
        rows,
        oracle_comparisons: comparisons,
    }
}

fn bench(c: &mut Criterion) {
    let config = EngineConfig::default();
    let report = run(&config);

    if quick_mode() {
        gate_against_baseline(report.selective_speedup());
        return;
    }

    assert!(
        report.selective_speedup() >= 3.0,
        "E21 acceptance: the delta path answers the selective family at only \
         {:.2}x full re-index+re-eval under {:.0}% churn (floor 3x)",
        report.selective_speedup(),
        CHURN * 100.0
    );
    write_json(&report);

    // A small criterion group for the HTML/log view: one maintained
    // round-trip (apply + undo, evaluating after each) vs one full
    // rebuild + re-evaluation.
    let db = scale_corpus(
        ELEMS,
        FACT_RELATIONS,
        FACT_TUPLES,
        SELECTIVE_TUPLES,
        CORPUS_SEED,
    );
    let batches = mutation_traffic(&db, 1, CHURN, CORPUS_SEED);
    let plans: Vec<PreparedQuery> = selective_join_queries()
        .iter()
        .map(|q| PreparedQuery::prepare(q, &config))
        .collect();
    let engine = Engine::new(config);
    let first = engine.apply_delta(&db, &batches[0]).expect("valid batch");
    // Effective forward/inverse batches from the applied delta: a
    // round-trip returns the content to its pre-batch state exactly.
    let mut forward = DeltaBatch::new();
    let mut inverse = DeltaBatch::new();
    for (sym, _, row) in first.applied().deletions() {
        forward.delete(*sym, row.clone());
        inverse.insert(*sym, row.clone());
    }
    for (sym, row) in first.applied().insertions() {
        forward.insert(*sym, row.clone());
        inverse.delete(*sym, row.clone());
    }
    let mut report = Some(
        engine
            .apply_delta_chained(first, &inverse)
            .expect("inverse of an applied delta is valid"),
    );
    let mut g = c.benchmark_group("e21");
    g.sample_size(10);
    g.bench_function("delta: maintain+eval round-trip (1e5)", |b| {
        b.iter(|| {
            let fwd = engine
                .apply_delta_chained(report.take().expect("chained"), &forward)
                .expect("forward batch");
            black_box(warm_round(&plans, fwd.index()));
            let back = engine
                .apply_delta_chained(fwd, &inverse)
                .expect("inverse batch");
            black_box(warm_round(&plans, back.index()));
            report = Some(back);
        })
    });
    g.bench_function("full: re-index+re-eval round (1e5)", |b| {
        b.iter(|| {
            let index = StructureIndex::new(&db);
            black_box(fresh_round(&plans, &index));
        })
    });
    g.finish();
}

/// The CI regression gate of quick mode: the measured delta-vs-full
/// speedup must hold a generous 1.5x floor (the full-mode acceptance
/// floor is 3x; the slack absorbs shared-runner noise).
fn gate_against_baseline(speedup: f64) {
    const FLOOR: f64 = 1.5;
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_E21.json");
    let recorded = std::fs::read_to_string(path)
        .ok()
        .as_deref()
        .and_then(|json| json_field_f64(json, "\"speedup\": "));
    match recorded {
        Some(r) => println!(
            "  quick-mode gate: measured {speedup:.2}x | baseline {r:.2}x | delta {:+.1}%",
            (speedup / r - 1.0) * 100.0
        ),
        None => println!("  quick-mode gate: measured {speedup:.2}x (no readable baseline)"),
    }
    assert!(
        speedup >= FLOOR,
        "E21 incremental regression: the delta path is only {speedup:.2}x \
         full re-index+re-eval (floor {FLOOR}x)"
    );
    println!("  quick-mode gate passed: the delta path holds the {FLOOR}x floor");
}

/// Emit `BENCH_E21.json` at the repository root, machine-readable.  The
/// top-level `"speedup"` is the gated selective-family number (and the
/// first such key in the document, which is what the quick-mode gate's
/// scanner reads); the per-family rows follow.
fn write_json(r: &Report) {
    let families = r
        .rows
        .iter()
        .map(|(name, delta_ms, full_ms, speedup)| {
            format!(
                "    {{\"family\": \"{name}\", \"delta_ms_per_round\": {delta_ms:.3}, \
                 \"full_ms_per_round\": {full_ms:.3}, \"family_speedup\": {speedup:.2}}}"
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let out = format!(
        "{{\n  \"experiment\": \"e21_incremental\",\n  \"seed\": {CORPUS_SEED},\n  \
         \"elements\": {ELEMS},\n  \"tuples\": {},\n  \"rounds\": {},\n  \
         \"churn\": {CHURN},\n  \"avg_round_tuple_ops\": {:.1},\n  \
         \"speedup\": {:.2},\n  \"families\": [\n{families}\n  ],\n  \
         \"index_builds_during_delta_sweep\": 0,\n  \
         \"oracle\": {{\"comparisons\": {}, \"agreement\": 1.0}}\n}}\n",
        r.tuples,
        r.rounds,
        r.avg_round_ops,
        r.selective_speedup(),
        r.oracle_comparisons
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_E21.json");
    std::fs::write(path, out).expect("write BENCH_E21.json at the repo root");
    println!("  wrote {path}");
}

criterion_group!(benches, bench);
criterion_main!(benches);
