//! E2 — Lemma 3.3: bounded-tree-depth queries evaluate in pl-space.
//! Series: peak metered work-tape bits vs database size (grows like log n),
//! plus runtime of the tree-depth solver vs the backtracking baseline.

use cq_solver::backtrack::BacktrackSolver;
use cq_solver::treedepth::hom_via_treedepth;
use cq_structures::families;
use cq_workloads::random_graph_structure;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    println!("E2: peak space bits vs |B| for the star query K_1,6 (td = 2)");
    let query = families::star(6);
    for exp in [6u32, 8, 10] {
        let n = 1usize << exp;
        let db = random_graph_structure(n, 0.02, 42);
        let run = hom_via_treedepth(&query, &db);
        println!(
            "  |B| = {n:>5}  peak_bits = {:>4}  peak_assignment = {}  answer = {}",
            run.space.peak_bits, run.space.peak_assignment, run.exists
        );
    }
    let mut g = c.benchmark_group("e02");
    g.sample_size(10);
    for n in [64usize, 256] {
        let db = random_graph_structure(n, 0.05, 7);
        g.bench_with_input(BenchmarkId::new("treedepth", n), &db, |b, db| {
            b.iter(|| hom_via_treedepth(&query, db).exists)
        });
        g.bench_with_input(BenchmarkId::new("backtracking", n), &db, |b, db| {
            b.iter(|| BacktrackSolver::default().exists(&query, db))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
