//! E3 — Theorem 4.6: bounded-pathwidth queries via the staircase frontier
//! sweep; frontier size stays polynomial (|B|^{w+1}) and small in practice.

use cq_decomp::pathwidth::pathwidth_of_structure;
use cq_solver::pathdp::hom_via_path_decomposition;
use cq_solver::treedec::hom_via_tree_decomposition;
use cq_structures::ops::colored_target;
use cq_structures::{families, star_expansion};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    println!("E3: frontier size of the path sweep on P*_k instances");
    for k in [4usize, 6, 8] {
        let query = star_expansion(&families::path(k));
        let base = families::path(64);
        let db = colored_target(k, &base, |_| (0..64).collect());
        let (_, pd) = pathwidth_of_structure(&query);
        let report = hom_via_path_decomposition(&query, &db, &pd);
        println!(
            "  k = {k}  exists = {}  peak_frontier = {}  bags = {}",
            report.exists, report.peak_frontier, report.bags
        );
    }
    let mut g = c.benchmark_group("e03");
    g.sample_size(10);
    let k = 6usize;
    let query = star_expansion(&families::path(k));
    let db = colored_target(k, &families::cycle(48), |_| (0..48).collect());
    let (_, pd) = pathwidth_of_structure(&query);
    let (_, td) = cq_decomp::treewidth::treewidth_of_structure(&query);
    g.bench_with_input(BenchmarkId::new("path sweep", k), &db, |b, db| {
        b.iter(|| hom_via_path_decomposition(&query, db, &pd).exists)
    });
    g.bench_with_input(BenchmarkId::new("tree DP", k), &db, |b, db| {
        b.iter(|| hom_via_tree_decomposition(&query, db, &td))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
