//! E13 — plan cache: cold-path vs cached-plan throughput on repeated-query
//! traffic.
//!
//! The prepared-query engine exists for exactly this workload: the same
//! query evaluated against many databases.  The cold path pays the
//! per-query preparation (core computation + the three exponential width
//! DPs + decomposition certificates) on every instance; the cached path
//! pays it once and serves every later instance from the LRU plan cache.

use cq_core::{Engine, EngineConfig};
use cq_structures::families;
use cq_workloads::{database_fleet, repeated_query_traffic};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    // One query, many databases: the purest repeated-query shape.  C9 is a
    // core (odd cycle) with pathwidth 2 and tree depth 5, so preparation
    // runs the full analysis and dispatch lands on the path sweep.
    let query = families::cycle(9);
    let fleet = database_fleet(8, 14, 0.35, 42);

    println!(
        "E13: cold preparation vs cached plans ({} databases, query C9)",
        fleet.len()
    );
    let mut g = c.benchmark_group("e13");
    g.sample_size(10);
    g.bench_function("cold: fresh engine per batch (prepare every time)", |b| {
        b.iter(|| {
            // A fresh engine has an empty plan cache: every instance pays
            // preparation again because the cache is gone between batches.
            fleet
                .iter()
                .map(|db| {
                    Engine::new(EngineConfig::default())
                        .solve(&query, db)
                        .exists
                })
                .filter(|&e| e)
                .count()
        })
    });
    g.bench_function(
        "cached: shared engine (prepare once, hit thereafter)",
        |b| {
            let engine = Engine::new(EngineConfig::default());
            b.iter(|| {
                fleet
                    .iter()
                    .map(|db| engine.solve(&query, db).exists)
                    .filter(|&e| e)
                    .count()
            })
        },
    );
    g.bench_function("prepared handle: solve_batch over registered query", |b| {
        let engine = Engine::new(EngineConfig::default());
        let id = engine.register(&query);
        let batch: Vec<_> = fleet.iter().map(|db| (id, db)).collect();
        b.iter(|| {
            engine
                .solve_batch(&batch)
                .iter()
                .filter(|r| r.exists)
                .count()
        })
    });
    g.finish();

    // Mixed traffic through the raw-instance batch API: distinct queries
    // interleaved, each recurring many times.
    let traffic = repeated_query_traffic(6, 12, 8, 7);
    println!(
        "E13: mixed traffic — {} instances over {} distinct queries",
        traffic.len(),
        traffic.queries.len()
    );
    let mut g = c.benchmark_group("e13-traffic");
    g.sample_size(10);
    g.bench_function("cold: caching disabled", |b| {
        let engine = Engine::new(EngineConfig::default()).with_cache_capacity(0);
        b.iter(|| {
            engine
                .solve_batch_instances(&traffic.instances())
                .iter()
                .filter(|r| r.exists)
                .count()
        })
    });
    g.bench_function("cached: warm engine across batches", |b| {
        let engine = Engine::new(EngineConfig::default());
        b.iter(|| {
            engine
                .solve_batch_instances(&traffic.instances())
                .iter()
                .filter(|r| r.exists)
                .count()
        })
    });
    g.finish();

    // Report the cache effectiveness a single warm pass ends with.
    let engine = Engine::new(EngineConfig::default());
    engine.solve_batch_instances(&traffic.instances());
    let stats = engine.cache_stats();
    println!(
        "E13: one warm pass over the mixed trace: {} misses (distinct queries), {} hits, {} cached plans",
        stats.misses, stats.hits, stats.entries
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
