//! E5 — Theorem 4.7: the PATH-complete problems (st-path, k-path, k-cycle)
//! and the reduction chain HOM(P*) -> HOM(->P) -> st-PATH -> HOM(->C).

use cq_reductions::chain::{dirpath_to_st_path, hom_path_star_to_dirpath, st_path_to_dircycle};
use cq_solver::colour_coding::ColorCodingConfig;
use cq_solver::problems::{has_k_cycle, has_k_path, st_path_at_most};
use cq_structures::ops::colored_target;
use cq_structures::{families, homomorphism_exists, star_expansion};
use cq_workloads::random_graph;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    println!("E5: reduction chain blow-up (Theorem 4.7)");
    let k = 4usize;
    let base = families::cycle(10);
    let b = colored_target(k, &base, |_| (0..10).collect());
    let query = star_expansion(&families::path(k));
    let expected = homomorphism_exists(&query, &b);
    let s1 = hom_path_star_to_dirpath(k, &b);
    let s2 = dirpath_to_st_path(k, &s1.database);
    let s3 = st_path_to_dircycle(&s2);
    println!(
        "  HOM(P*_{k}) answer={expected}; |B1|={} |G2|={} |B3|={}",
        s1.database.universe_size(),
        s2.graph.vertex_count(),
        s3.database.universe_size()
    );
    assert_eq!(s1.holds(), expected);
    assert_eq!(s2.holds(), expected);
    assert_eq!(s3.holds(), expected);

    println!("E5: k-path / k-cycle on G(48, 0.08), seed 11");
    let g = random_graph(48, 0.08, 11);
    for k in [4usize, 6] {
        println!(
            "  k={k} k-path={} k-cycle={}",
            has_k_path(&g, k, ColorCodingConfig::for_query_size(k)),
            has_k_cycle(&g, k, ColorCodingConfig::for_query_size(k))
        );
    }
    let mut grp = c.benchmark_group("e05");
    grp.sample_size(10);
    grp.bench_function("st-path BFS on G(200,0.05)", |bch| {
        let g = random_graph(200, 0.05, 3);
        bch.iter(|| st_path_at_most(&g, 0, 199, 10))
    });
    grp.bench_function("k-path colour coding k=6", |bch| {
        let g = random_graph(64, 0.08, 5);
        bch.iter(|| {
            has_k_path(
                &g,
                6,
                ColorCodingConfig {
                    trials: 50,
                    seed: 1,
                },
            )
        })
    });
    grp.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
