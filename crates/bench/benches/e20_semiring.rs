//! E20 — the semiring-generic kernel: does one sum-of-products DP, written
//! once and instantiated per semiring, keep the specialised kernels'
//! throughput while adding checked counting and weighted aggregates?
//!
//! Three question blocks, all on the E16 kernel-stress corpus so the
//! numbers are directly comparable with the checked-in `BENCH_E16.json`:
//!
//! * **Boolean/counting instantiations vs the pre-refactor kernel** — the
//!   same five evaluation paths E16 times (`treedec_decide`,
//!   `treedec_count`, `pathdp_decide`, `forest_count`,
//!   `backtrack_decide`), now running through the generic kernel at
//!   `BoolSemiring` / `CheckedNatSemiring`.  The reported
//!   `throughput_vs_e16` is checked-in-E16-warm-ms over measured-ms; the
//!   refactor's acceptance bar is ≥ 0.9x on every row (genericity must
//!   not cost more than 10%).
//! * **Weighted aggregates** — `min_cost` / `max_weight` through the
//!   tropical instantiations on the same instances (tree-DP, forest and
//!   search tiers), with cross-tier agreement asserted instance by
//!   instance before timing.  These rows have no E16 baseline: the
//!   capability did not exist.
//! * **Separator tables: flat packed-key arena vs `HashMap<Vec<u32>, _>`**
//!   — the group-sums representation the refactor replaced.  Both group
//!   every corpus relation by its separator projection (all but the last
//!   column); the hash-map "before" allocates one `Vec<u32>` key per
//!   probe, the `GroupTable` "after" packs keys back-to-back in one `u32`
//!   arena.
//!
//! Full mode writes `BENCH_E20.json` at the repository root.  **Quick
//! mode** (`CQ_BENCH_QUICK=1`, the CI bench-smoke step) skips the JSON
//! rewrite and instead gates the Boolean/counting rows against the
//! checked-in `BENCH_E16.json` with a generous 0.7x floor: unlike the
//! other bench gates (same-run warm-vs-cold ratios, immune to machine
//! drift), this ratio divides ms measured *today* by ms recorded when
//! E16 was baselined, so day-to-day CI-runner drift moves it by ±20%.
//! Only a real genericity regression trips 0.7x; the strict 0.9x
//! acceptance bar applies to full-mode baseline refreshes.

use cq_bench::{json_field_f64, median_time, min_time, quick_mode, timing_runs};
use cq_core::{EngineConfig, PreparedQuery};
use cq_solver::kernel;
use cq_solver::{GroupTable, MaxWeightSemiring, MinCostSemiring};
use cq_structures::{Structure, StructureIndex, TupleWeights};
use cq_workloads::kernel_stress_traffic;
use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::HashMap;
use std::time::Duration;

struct Row {
    name: &'static str,
    kernel: Duration,
    /// The matching `kernel_warm_ms` of the checked-in `BENCH_E16.json`
    /// (pre-refactor specialised kernel), when the row existed then.
    e16_warm_ms: Option<f64>,
}

impl Row {
    /// Pre-refactor warm time over measured time: ≥ 1.0 means the generic
    /// kernel is at least as fast as the specialised one was.
    fn throughput_vs_e16(&self) -> Option<f64> {
        self.e16_warm_ms
            .map(|baseline| baseline / (self.kernel.as_secs_f64() * 1e3))
    }
}

type Instance<'a> = (PreparedQuery, &'a Structure, StructureIndex, TupleWeights);

/// Time one evaluation path over every prepared instance (warm index).
/// Sub-millisecond trace sweeps are repeated until each timing sample
/// spans at least ~20ms, so the fast rows (the whole backtrack sweep is
/// tens of microseconds) do not gate CI on timer jitter or short
/// frequency excursions; the gated number is the minimum over the
/// timing runs ([`min_time`]) because interference only ever inflates a
/// sample.
fn measure(
    name: &'static str,
    instances: &[Instance<'_>],
    baseline: &[(String, f64)],
    f: impl Fn(&PreparedQuery, &StructureIndex, &TupleWeights) -> u64,
) -> Row {
    let sweep = || {
        for (prepared, _, index, weights) in instances {
            std::hint::black_box(f(prepared, index, weights));
        }
    };
    let calibration = median_time(1, sweep);
    let repeats = (Duration::from_millis(20).as_secs_f64() / calibration.as_secs_f64().max(1e-9))
        .ceil()
        .clamp(1.0, 1000.0) as u32;
    let kernel = min_time(timing_runs(3, 5), || {
        for _ in 0..repeats {
            sweep();
        }
    }) / repeats;
    let e16_warm_ms = baseline.iter().find(|(n, _)| n == name).map(|&(_, ms)| ms);
    Row {
        name,
        kernel,
        e16_warm_ms,
    }
}

/// The `kernel_warm_ms` per solver row of the checked-in `BENCH_E16.json`.
fn e16_baseline() -> Vec<(String, f64)> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_E16.json");
    let json = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("checked-in {path} must be readable: {e}"));
    json.lines()
        .filter_map(|line| {
            let solver = cq_bench::json_field(line, "\"solver\": ")?.to_string();
            let warm = json_field_f64(line, "\"kernel_warm_ms\": ")?;
            Some((solver, warm))
        })
        .collect()
}

/// Group every relation of every corpus database by its separator
/// projection (all columns but the last), summing a per-row weight — the
/// exact access pattern of the kernel's per-edge group-sum tables — into
/// either representation, and time the difference.
fn group_sums_shootout(instances: &[Instance<'_>]) -> (Duration, Duration) {
    // One flat (stride, rows) stream per relation, precomputed so both
    // contenders time pure grouping.
    let mut streams: Vec<(usize, Vec<Vec<u32>>)> = Vec::new();
    for (_, target, _, _) in instances {
        for sym in target.vocabulary().ids() {
            let arity = target.vocabulary().arity(sym);
            if arity < 2 {
                continue;
            }
            let rows: Vec<Vec<u32>> = target.relation(sym).rows().map(|t| t.to_vec()).collect();
            if !rows.is_empty() {
                streams.push((arity - 1, rows));
            }
        }
    }
    let hashmap = median_time(timing_runs(2, 5), || {
        for (stride, rows) in &streams {
            let mut table: HashMap<Vec<u32>, u64> = HashMap::new();
            for row in rows {
                // The pre-refactor representation: a fresh Vec<u32> key
                // allocated per probed row.
                let key: Vec<u32> = row[..*stride].to_vec();
                *table.entry(key).or_insert(0) += u64::from(row[*stride]);
            }
            std::hint::black_box(table.len());
        }
    });
    let arena = median_time(timing_runs(2, 5), || {
        for (stride, rows) in &streams {
            let mut table: GroupTable<u64> = GroupTable::with_capacity(*stride, rows.len());
            for row in rows {
                table.merge(&row[..*stride], u64::from(row[*stride]), |acc, v| *acc += v);
            }
            std::hint::black_box(table.len());
        }
    });
    (hashmap, arena)
}

fn bench(c: &mut Criterion) {
    let (db_count, db_size, repeats, seed) = (4usize, 14usize, 6usize, 16u64);
    let traffic = kernel_stress_traffic(db_count, db_size, repeats, seed);
    let config = EngineConfig::default();
    println!(
        "E20: semiring kernel on the E16 stress trace of {} instances ({} queries, {} random targets of {} vertices, seed {})",
        traffic.len(),
        traffic.queries.len(),
        db_count,
        db_size,
        seed
    );

    let instances: Vec<Instance<'_>> = traffic
        .trace
        .iter()
        .map(|&(q, d)| {
            let prepared = PreparedQuery::prepare(&traffic.queries[q], &config);
            prepared.counting_analysis();
            let target = &traffic.databases[d];
            let weights = TupleWeights::from_fn(target, |sym, row, t| {
                (sym.index() as u64 + 1) * 7
                    + row as u64 * 3
                    + t.first().copied().unwrap_or(0) as u64 % 5
            });
            (prepared, target, StructureIndex::new(target), weights)
        })
        .collect();

    // Cross-tier weighted agreement before timing anything: the tree-DP,
    // forest and search instantiations must name the same optimum on every
    // instance and both objectives.
    for (prepared, target, index, weights) in &instances {
        let counting = prepared.counting_analysis();
        for objective in ["min", "max"] {
            let (tree, forest, search) = if objective == "min" {
                (
                    kernel::aggregate_via_tree_decomposition_indexed::<MinCostSemiring>(
                        prepared.original(),
                        index,
                        &counting.tree_decomposition,
                        weights,
                    ),
                    kernel::aggregate_with_forest_indexed::<MinCostSemiring>(
                        prepared.original(),
                        index,
                        &counting.elimination_forest,
                        weights,
                    ),
                    kernel::aggregate_via_search_indexed::<MinCostSemiring>(
                        prepared.original(),
                        index,
                        weights,
                    ),
                )
            } else {
                (
                    kernel::aggregate_via_tree_decomposition_indexed::<MaxWeightSemiring>(
                        prepared.original(),
                        index,
                        &counting.tree_decomposition,
                        weights,
                    ),
                    kernel::aggregate_with_forest_indexed::<MaxWeightSemiring>(
                        prepared.original(),
                        index,
                        &counting.elimination_forest,
                        weights,
                    ),
                    kernel::aggregate_via_search_indexed::<MaxWeightSemiring>(
                        prepared.original(),
                        index,
                        weights,
                    ),
                )
            };
            assert_eq!(
                tree,
                forest,
                "{objective}: tree-DP and forest disagree on {} -> {target}",
                prepared.original()
            );
            assert_eq!(
                tree,
                search,
                "{objective}: tree-DP and search disagree on {} -> {target}",
                prepared.original()
            );
        }
    }
    println!(
        "  weighted cross-tier agreement: 3 tiers x 2 objectives on all {} instances",
        instances.len()
    );

    let baseline = e16_baseline();
    let rows = vec![
        measure("treedec_decide", &instances, &baseline, |p, idx, _| {
            kernel::hom_via_tree_decomposition_indexed(
                p.evaluated(),
                idx,
                &p.analysis().tree_decomposition,
            )
            .exists as u64
        }),
        measure("treedec_count", &instances, &baseline, |p, idx, _| {
            kernel::count_hom_via_tree_decomposition_indexed(
                p.original(),
                idx,
                &p.counting_analysis().tree_decomposition,
            )
            .count
            .expect_finite()
        }),
        measure("pathdp_decide", &instances, &baseline, |p, idx, _| {
            kernel::hom_via_staircase_indexed(p.evaluated(), idx, p.staircase()).exists as u64
        }),
        measure("forest_count", &instances, &baseline, |p, idx, _| {
            kernel::count_with_forest_indexed(
                p.original(),
                idx,
                &p.counting_analysis().elimination_forest,
            )
            .count
            .expect_finite()
        }),
        measure("backtrack_decide", &instances, &baseline, |p, idx, _| {
            kernel::find_hom_indexed(p.evaluated(), idx, true)
                .0
                .is_some() as u64
        }),
        measure("mincost_treedec", &instances, &baseline, |p, idx, w| {
            kernel::aggregate_via_tree_decomposition_indexed::<MinCostSemiring>(
                p.original(),
                idx,
                &p.counting_analysis().tree_decomposition,
                w,
            )
            .unwrap_or(0)
        }),
        measure("maxweight_forest", &instances, &baseline, |p, idx, w| {
            kernel::aggregate_with_forest_indexed::<MaxWeightSemiring>(
                p.original(),
                idx,
                &p.counting_analysis().elimination_forest,
                w,
            )
            .unwrap_or(0)
        }),
        measure("mincost_search", &instances, &baseline, |p, idx, w| {
            kernel::aggregate_via_search_indexed::<MinCostSemiring>(p.original(), idx, w)
                .unwrap_or(0)
        }),
    ];

    println!("  row              |    kernel ms |  e16 warm ms | throughput vs e16");
    for row in &rows {
        let ms = row.kernel.as_secs_f64() * 1e3;
        match (row.e16_warm_ms, row.throughput_vs_e16()) {
            (Some(base), Some(ratio)) => println!(
                "  {:<16} | {ms:>12.3} | {base:>12.3} | {ratio:>6.2}x",
                row.name
            ),
            _ => println!(
                "  {:<16} | {ms:>12.3} | {:>12} | {:>7}",
                row.name, "(new)", "-"
            ),
        }
    }

    let (hashmap, arena) = group_sums_shootout(&instances);
    let group_speedup = hashmap.as_secs_f64() / arena.as_secs_f64();
    println!(
        "  group_sums: HashMap<Vec<u32>,_> {:.3?} vs flat arena {:.3?} ({group_speedup:.2}x)",
        hashmap, arena
    );

    if quick_mode() {
        gate_against_e16(&rows);
        return;
    }

    write_json(
        &rows,
        hashmap,
        arena,
        traffic.len(),
        db_count,
        db_size,
        repeats,
        seed,
    );

    let mut g = c.benchmark_group("e20");
    g.sample_size(10);
    g.bench_function("generic kernel: checked counting over the trace", |b| {
        b.iter(|| {
            instances
                .iter()
                .map(|(p, _, idx, _)| {
                    kernel::count_hom_via_tree_decomposition_indexed(
                        p.original(),
                        idx,
                        &p.counting_analysis().tree_decomposition,
                    )
                    .count
                    .expect_finite()
                })
                .sum::<u64>()
        })
    });
    g.bench_function("generic kernel: min-cost over the trace", |b| {
        b.iter(|| {
            instances
                .iter()
                .map(|(p, _, idx, w)| {
                    kernel::aggregate_via_tree_decomposition_indexed::<MinCostSemiring>(
                        p.original(),
                        idx,
                        &p.counting_analysis().tree_decomposition,
                        w,
                    )
                    .unwrap_or(0)
                })
                .sum::<u64>()
        })
    });
    g.finish();
}

/// The CI regression gate of quick mode: every row with an E16 twin must
/// hold ≥ `FLOOR` of the pre-refactor warm throughput.  The floor is
/// deliberately generous (0.7x, not the full-mode 0.9x acceptance bar)
/// because this is the one gate built on cross-day absolute timings —
/// today's measured ms over the ms recorded when BENCH_E16.json was
/// baselined — so runner drift alone moves the ratio by ±20%.
fn gate_against_e16(rows: &[Row]) {
    const FLOOR: f64 = 0.7;
    println!("  quick-mode gate vs checked-in BENCH_E16.json warm timings (floor {FLOOR}x):");
    let mut failures = Vec::new();
    let mut gated = 0usize;
    for row in rows {
        let Some(ratio) = row.throughput_vs_e16() else {
            continue;
        };
        gated += 1;
        println!(
            "    {:<16} throughput {ratio:>6.2}x of the pre-refactor kernel",
            row.name
        );
        if ratio < FLOOR {
            failures.push(format!(
                "{}: generic kernel runs at {ratio:.2}x of the specialised kernel (floor {FLOOR}x)",
                row.name
            ));
        }
    }
    assert!(
        gated >= 5,
        "only {gated} rows matched the E16 baseline — row names drifted"
    );
    assert!(
        failures.is_empty(),
        "E20 semiring-kernel throughput regression:\n  {}",
        failures.join("\n  ")
    );
    println!("  quick-mode gate passed: every E16 row holds the {FLOOR}x floor");
}

/// Emit `BENCH_E20.json` at the repository root.
#[allow(clippy::too_many_arguments)]
fn write_json(
    rows: &[Row],
    hashmap: Duration,
    arena: Duration,
    instances: usize,
    db_count: usize,
    db_size: usize,
    repeats: usize,
    seed: u64,
) {
    let ms = |d: Duration| d.as_secs_f64() * 1e3;
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"experiment\": \"e20_semiring\",\n");
    out.push_str(&format!(
        "  \"corpus\": {{\"instances\": {instances}, \"db_count\": {db_count}, \"db_size\": {db_size}, \"repeats_per_query\": {repeats}, \"seed\": {seed}}},\n"
    ));
    out.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        match (row.e16_warm_ms, row.throughput_vs_e16()) {
            (Some(base), Some(ratio)) => out.push_str(&format!(
                "    {{\"solver\": \"{}\", \"kernel_ms\": {:.3}, \"e16_warm_ms\": {base:.3}, \"throughput_vs_e16\": {ratio:.2}}}{}\n",
                row.name,
                ms(row.kernel),
                if i + 1 < rows.len() { "," } else { "" }
            )),
            _ => out.push_str(&format!(
                "    {{\"solver\": \"{}\", \"kernel_ms\": {:.3}}}{}\n",
                row.name,
                ms(row.kernel),
                if i + 1 < rows.len() { "," } else { "" }
            )),
        }
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"group_sums\": {{\"hashmap_ms\": {:.3}, \"arena_ms\": {:.3}, \"speedup\": {:.2}}}\n",
        ms(hashmap),
        ms(arena),
        hashmap.as_secs_f64() / arena.as_secs_f64()
    ));
    out.push_str("}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_E20.json");
    std::fs::write(path, out).expect("write BENCH_E20.json at the repo root");
    println!("  wrote {path}");
}

criterion_group!(benches, bench);
criterion_main!(benches);
