//! E7 — Lemma 3.6 (Reduction Lemma): the four reduction steps, their answer
//! preservation and their instance blow-up.

use cq_graphs::{families as gf, find_minor_map};
use cq_reductions::{gaifman_to_structure_instance, minor_to_host_instance, remove_star_colors};
use cq_structures::ops::colored_target;
use cq_structures::{families, homomorphism_exists, star_expansion};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    println!("E7: Reduction Lemma steps (Lemma 3.7, 3.8, 3.9)");
    // Step HOM(M*) <= HOM(G*): M = P4 minor of the 2x3 grid.
    let minor = gf::path_graph(4);
    let host = gf::grid_graph(2, 3);
    let mu = find_minor_map(&minor, &host).unwrap();
    let b = colored_target(4, &families::cycle(5), |_| (0..5).collect());
    let mstar = star_expansion(&minor.to_structure());
    let expected = homomorphism_exists(&mstar, &b);
    let r_minor = minor_to_host_instance(&minor, &b, &host, &mu);
    println!(
        "  minor step: answer {} -> {}  |B'| = {}",
        expected,
        r_minor.holds(),
        r_minor.database_size
    );
    assert_eq!(expected, r_minor.holds());

    // Step HOM(G*) <= HOM(A*): ternary structure whose Gaifman graph is a triangle.
    let vocab = cq_structures::Vocabulary::from_pairs([("R", 3)]).unwrap();
    let rsym = vocab.id_of("R").unwrap();
    let mut builder = cq_structures::StructureBuilder::new(vocab);
    builder.raw_fact(rsym, vec![0, 1, 2]);
    let a = builder.build().unwrap();
    let gb = colored_target(3, &families::clique(4), |_| (0..4).collect());
    let r_gaifman = gaifman_to_structure_instance(&a, &gb);
    println!(
        "  gaifman step: holds = {}  |B'| = {}",
        r_gaifman.holds(),
        r_gaifman.database_size
    );
    assert!(r_gaifman.holds());

    // Step HOM(core(A)*) <= HOM(core(A)): odd cycle query.
    let c5 = families::cycle(5);
    let cb = colored_target(5, &families::cycle(5), |_| (0..5).collect());
    let r_star = remove_star_colors(&c5, &cb);
    println!(
        "  star-removal step: holds = {}  |B'| = {}",
        r_star.holds(),
        r_star.database_size
    );
    assert!(r_star.holds());

    let mut g = c.benchmark_group("e07");
    g.sample_size(10);
    g.bench_function("minor reduction P4 into 2x3 grid", |bch| {
        bch.iter(|| minor_to_host_instance(&minor, &b, &host, &mu).database_size)
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
