//! E12 — ablations: core preprocessing on/off, arc consistency on/off, and
//! solver-registry edits in the dispatch engine.
//!
//! With the prepared-query engine, solver ablations are **registry edits**
//! (`SolverRegistry::without`) rather than code forks: the same batch of
//! instances is driven through engines whose registries differ by one tier,
//! and the dispatch / answers are compared directly.

use cq_core::{solve_instance, Engine, EngineConfig, SolverChoice, SolverRegistry};
use cq_solver::backtrack::{BacktrackConfig, BacktrackSolver};
use cq_structures::families;
use cq_workloads::database_fleet;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    println!("E12: ablation — search effort with and without arc consistency");
    let a = families::cycle(7);
    let b = families::path(2);
    let with_ac = BacktrackSolver::default().solve(&a, &b).1;
    let without_ac = BacktrackSolver::with_config(BacktrackConfig {
        preprocess_arc_consistency: false,
        maintain_arc_consistency: false,
        fail_first_ordering: true,
    })
    .solve(&a, &b)
    .1;
    println!(
        "  C7 -> K2 (no): assignments with AC = {}, without AC = {}",
        with_ac.assignments, without_ac.assignments
    );

    println!("E12: ablation — core preprocessing shrinks the evaluated query");
    let c8 = families::cycle(8);
    let with_core = solve_instance(&c8, &families::path(2), EngineConfig::default());
    let without_core = solve_instance(
        &c8,
        &families::path(2),
        EngineConfig {
            use_core: false,
            ..EngineConfig::default()
        },
    );
    println!(
        "  C8 query: evaluated size with core = {}, without = {}",
        with_core.evaluated_query_size, without_core.evaluated_query_size
    );

    println!("E12: ablation — solver tiers removed by registry edits");
    let cfg = EngineConfig::default();
    let star = families::star(5);
    let fleet = database_fleet(6, 12, 0.35, 3);
    let ablations: [(&str, Option<SolverChoice>); 3] = [
        ("full registry", None),
        ("without tree-depth tier", Some(SolverChoice::TreeDepth)),
        (
            "without path-sweep tier",
            Some(SolverChoice::PathDecomposition),
        ),
    ];
    for (name, removed) in &ablations {
        let registry = match removed {
            None => SolverRegistry::standard(&cfg),
            Some(choice) => SolverRegistry::standard(&cfg).without(*choice),
        };
        let engine = Engine::with_registry(cfg, registry);
        let report = engine.solve(&star, &fleet[0]);
        println!("  {name:<28} star(5) dispatched to {:?}", report.choice);
    }

    let mut g = c.benchmark_group("e12");
    g.sample_size(10);
    let query = families::cycle(6);
    let target = families::grid(3, 3);
    g.bench_function("engine with core preprocessing", |bch| {
        bch.iter(|| solve_instance(&query, &target, EngineConfig::default()).exists)
    });
    g.bench_function("engine without core preprocessing", |bch| {
        bch.iter(|| {
            solve_instance(
                &query,
                &target,
                EngineConfig {
                    use_core: false,
                    ..EngineConfig::default()
                },
            )
            .exists
        })
    });
    g.finish();

    // Registry-edit throughput: the same repeated-query batch through the
    // full registry and through registries with one tier removed (batch
    // API, warm cache): how much each licensed tier is worth.
    let mut g = c.benchmark_group("e12-registry");
    g.sample_size(10);
    for (name, removed) in &ablations {
        let registry = match removed {
            None => SolverRegistry::standard(&cfg),
            Some(choice) => SolverRegistry::standard(&cfg).without(*choice),
        };
        let engine = Engine::with_registry(cfg, registry);
        let id = engine.register(&star);
        let batch: Vec<_> = fleet.iter().map(|db| (id, db)).collect();
        g.bench_function(*name, |bch| {
            bch.iter(|| {
                engine
                    .solve_batch(&batch)
                    .iter()
                    .filter(|r| r.exists)
                    .count()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
