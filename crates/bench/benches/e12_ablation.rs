//! E12 — ablations: core preprocessing on/off, arc consistency on/off, and
//! solver choice in the dispatch engine.

use cq_core::{solve_instance, EngineConfig};
use cq_solver::backtrack::{BacktrackConfig, BacktrackSolver};
use cq_structures::families;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    println!("E12: ablation — search effort with and without arc consistency");
    let a = families::cycle(7);
    let b = families::path(2);
    let with_ac = BacktrackSolver::default().solve(&a, &b).1;
    let without_ac = BacktrackSolver::with_config(BacktrackConfig {
        preprocess_arc_consistency: false,
        maintain_arc_consistency: false,
        fail_first_ordering: true,
    })
    .solve(&a, &b)
    .1;
    println!(
        "  C7 -> K2 (no): assignments with AC = {}, without AC = {}",
        with_ac.assignments, without_ac.assignments
    );

    println!("E12: ablation — core preprocessing shrinks the evaluated query");
    let c8 = families::cycle(8);
    let with_core = solve_instance(&c8, &families::path(2), EngineConfig::default());
    let without_core = solve_instance(
        &c8,
        &families::path(2),
        EngineConfig { use_core: false, ..EngineConfig::default() },
    );
    println!(
        "  C8 query: evaluated size with core = {}, without = {}",
        with_core.evaluated_query_size, without_core.evaluated_query_size
    );

    let mut g = c.benchmark_group("e12");
    g.sample_size(10);
    let query = families::cycle(6);
    let target = families::grid(3, 3);
    g.bench_function("engine with core preprocessing", |bch| {
        bch.iter(|| solve_instance(&query, &target, EngineConfig::default()).exists)
    });
    g.bench_function("engine without core preprocessing", |bch| {
        bch.iter(|| {
            solve_instance(
                &query,
                &target,
                EngineConfig { use_core: false, ..EngineConfig::default() },
            )
            .exists
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
