//! E1 — Theorem 3.1: classify named query classes into the three degrees.
//! Regenerates the classification table (degree per family) and benchmarks
//! the classification routine itself, plus the engine's batch evaluation of
//! one representative member per degree.

use cq_core::{classify_generated, Degree, Engine, EngineConfig};
use cq_structures::{families, star_expansion};
use cq_workloads::database_fleet;
use criterion::{criterion_group, criterion_main, Criterion};

type FamilyRow = (
    &'static str,
    Box<dyn Fn(usize) -> cq_structures::Structure>,
    Degree,
);

fn families_table() -> Vec<FamilyRow> {
    vec![
        (
            "undirected paths",
            Box::new(|i| families::path(i + 2)),
            Degree::ParaL,
        ),
        ("stars", Box::new(|i| families::star(i + 1)), Degree::ParaL),
        (
            "even cycles",
            Box::new(|i| families::cycle(2 * i + 4)),
            Degree::ParaL,
        ),
        (
            "directed paths",
            Box::new(|i| families::directed_path(i + 2)),
            Degree::PathComplete,
        ),
        (
            "coloured paths P*",
            Box::new(|i| star_expansion(&families::path(i + 2))),
            Degree::PathComplete,
        ),
        (
            "odd cycles",
            Box::new(|i| families::cycle(2 * i + 3)),
            Degree::PathComplete,
        ),
        (
            "coloured trees T*",
            Box::new(|i| star_expansion(&families::tree_t(i + 1))),
            Degree::TreeComplete,
        ),
        (
            "cliques",
            Box::new(|i| families::clique(i + 1)),
            Degree::W1Hard,
        ),
        (
            "coloured grids",
            Box::new(|i| star_expansion(&families::grid(i + 1, i + 1))),
            Degree::W1Hard,
        ),
    ]
}

fn bench(c: &mut Criterion) {
    println!("E1: class -> degree (Theorem 3.1)");
    for (name, gen, expected) in families_table() {
        // Tree/grid families get expensive fast (the members grow
        // exponentially/quadratically), and odd cycles reach 2i+3 vertices —
        // exponential exact-width territory past ~7 samples.  The path-shaped
        // families need a longer prefix because tree depth grows only
        // logarithmically: at 6 samples the growth detector cannot yet see
        // td(->P_k) move.
        let samples = if name.contains("trees") || name.contains("grids") {
            3
        } else if name.contains("cycles") {
            7
        } else {
            10
        };
        let got = classify_generated(&*gen, samples).degree;
        println!("  {name:<22} expected {expected:?} measured {got:?}");
        assert_eq!(got, expected, "{name}");
    }
    let mut g = c.benchmark_group("e01");
    g.sample_size(10);
    g.bench_function("classify directed paths (6 samples)", |b| {
        b.iter(|| classify_generated(|i| families::directed_path(i + 2), 6).degree)
    });
    g.finish();

    // Batch evaluation of one representative query per degree against a
    // database fleet, through the prepared-query engine: each query is
    // prepared once (plan cache), each instance pays only solver work.
    let engine = Engine::new(EngineConfig::default());
    let representatives = [
        ("star (para-L)", families::star(4)),
        ("odd cycle (PATH)", families::cycle(7)),
        ("clique K4 (tree DP)", families::clique(4)),
    ];
    let fleet = database_fleet(6, 12, 0.35, 5);
    let batch: Vec<_> = representatives
        .iter()
        .map(|(_, q)| engine.register(q))
        .flat_map(|id| fleet.iter().map(move |db| (id, db)))
        .collect();
    let mut g = c.benchmark_group("e01-batch");
    g.sample_size(10);
    g.bench_function("engine.solve_batch (3 queries x 6 databases)", |b| {
        b.iter(|| {
            engine
                .solve_batch(&batch)
                .iter()
                .filter(|r| r.exists)
                .count()
        })
    });
    g.finish();
    let stats = engine.cache_stats();
    println!(
        "E1: batch served with {} prepared plans ({} cache hits so far)",
        stats.entries, stats.hits
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
