//! E1 — Theorem 3.1: classify named query classes into the three degrees.
//! Regenerates the classification table (degree per family) and benchmarks
//! the classification routine itself.

use cq_core::{classify_generated, Degree};
use cq_structures::{families, star_expansion};
use criterion::{criterion_group, criterion_main, Criterion};

fn families_table() -> Vec<(&'static str, Box<dyn Fn(usize) -> cq_structures::Structure>, Degree)> {
    vec![
        ("undirected paths", Box::new(|i| families::path(i + 2)), Degree::ParaL),
        ("stars", Box::new(|i| families::star(i + 1)), Degree::ParaL),
        ("even cycles", Box::new(|i| families::cycle(2 * i + 4)), Degree::ParaL),
        ("directed paths", Box::new(|i| families::directed_path(i + 2)), Degree::PathComplete),
        ("coloured paths P*", Box::new(|i| star_expansion(&families::path(i + 2))), Degree::PathComplete),
        ("odd cycles", Box::new(|i| families::cycle(2 * i + 3)), Degree::PathComplete),
        ("coloured trees T*", Box::new(|i| star_expansion(&families::tree_t(i + 1))), Degree::TreeComplete),
        ("cliques", Box::new(|i| families::clique(i + 1)), Degree::W1Hard),
        ("coloured grids", Box::new(|i| star_expansion(&families::grid(i + 1, i + 1))), Degree::W1Hard),
    ]
}

fn bench(c: &mut Criterion) {
    println!("E1: class -> degree (Theorem 3.1)");
    for (name, gen, expected) in families_table() {
        let samples = if name.contains("trees") || name.contains("grids") { 3 } else { 6 };
        let got = classify_generated(&*gen, samples).degree;
        println!("  {name:<22} expected {expected:?} measured {got:?}");
        assert_eq!(got, expected, "{name}");
    }
    let mut g = c.benchmark_group("e01");
    g.sample_size(10);
    g.bench_function("classify directed paths (6 samples)", |b| {
        b.iter(|| classify_generated(|i| families::directed_path(i + 2), 6).degree)
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
