//! E18 — scale: the compiled-program cache and the interned index at
//! 10^5–10^6 tuples.
//!
//! Each corpus is a warehouse-shaped [`scale_corpus`]: three dense fact
//! relations carrying the bulk of the tuples plus one sparse relation `S`.
//! Two query families run against it:
//!
//! * **selective** — chain/star/cycle joins whose every atom reads `S`.
//!   Their kernel *runs* are cheap (the driver iteration walks short
//!   posting lists) while per-call program *compilation* still scans the
//!   whole universe building prefilter domains — so the per-index program
//!   cache (`PreparedQuery::decide_via_tree` and friends) is the whole
//!   ballgame, and the warm-vs-recompile ratio is the headline column;
//! * **bulk** — chain/star/cycle joins over the fact relations, where the
//!   run dominates: reported for context, not gated.
//!
//! Full mode measures both the 10^5- and the 10^6-tuple corpus and writes
//! the machine-readable `BENCH_E18.json` at the repository root; the 2x
//! warm-throughput acceptance floor is asserted on the 10^5 corpus.  Quick
//! mode (`CQ_BENCH_QUICK=1`, the CI bench-smoke step) runs only the 10^5
//! corpus and gates the measured speedup against a generous 1.5x floor and
//! the peak RSS against the checked-in baseline.
//!
//! Correctness is asserted before timing, three ways: warm and
//! freshly-recompiled programs agree on every instance; the engine agrees
//! with brute force on seeded induced subsamples of the same corpus
//! (the in-bench differential oracle — `"agreement": 1.0` in the JSON is
//! asserted, not assumed); and the warm timing loops perform **exactly
//! zero** program compilations, metered by
//! [`program_compilation_count`] (the bench is single-threaded, so exact
//! equality is safe here — unlike in `cargo test`).
//!
//! The memory columns record what one cached database pins: the index
//! (which *shares* its structure via `Arc`) vs the index plus a second
//! structure copy (what the engine's instance cache held before), plus the
//! process peak RSS from `/proc/self/status`.

use cq_bench::{json_field_f64, median_time, quick_mode, timing_runs};
use cq_core::{Engine, EngineConfig, PreparedQuery};
use cq_solver::{
    count_hom_via_tree_decomposition_indexed, hom_via_tree_decomposition_indexed,
    program_compilation_count,
};
use cq_structures::{
    count_homomorphisms_bruteforce, homomorphism_exists, Structure, StructureIndex,
};
use cq_workloads::{scale_corpus, scale_join_queries, selective_join_queries, subsample_database};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Instant;

const CORPUS_SEED: u64 = 0xE18;
const FACT_RELATIONS: usize = 3;

/// One corpus scale: `n` elements, per-relation fact draws, sparse-`S`
/// draws, and the distinct-tuple floor asserted after dedup.
struct Scale {
    name: &'static str,
    elems: usize,
    fact_tuples: usize,
    selective_tuples: usize,
    floor_tuples: usize,
}

const SCALES: [Scale; 2] = [
    Scale {
        name: "1e5",
        elems: 4_000,
        fact_tuples: 35_500,
        selective_tuples: 100,
        floor_tuples: 100_000,
    },
    Scale {
        name: "1e6",
        elems: 20_000,
        fact_tuples: 340_000,
        selective_tuples: 500,
        floor_tuples: 1_000_000,
    },
];

struct Family {
    name: &'static str,
    plans: Vec<PreparedQuery>,
    /// Passes over the family per timed closure (selective ops are
    /// microseconds, bulk ops much slower — equalize the timer's footing).
    passes: usize,
}

/// Measured results for one corpus scale.
struct ScaleReport {
    name: &'static str,
    elems: usize,
    tuples: usize,
    selective_tuples: usize,
    index_build_ms: f64,
    /// `(family, warm inst/s, recompile inst/s, speedup)` rows.
    rows: Vec<(&'static str, f64, f64, f64)>,
    shared_mb: f64,
    cloned_mb: f64,
    oracle_comparisons: usize,
}

fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// One warm pass: every plan decides and counts through its per-index
/// compiled-program cache.
fn warm_pass(family: &Family, index: &StructureIndex) {
    for plan in &family.plans {
        std::hint::black_box(plan.decide_via_tree(index));
        std::hint::black_box(plan.count_via_tree(index));
    }
}

/// One recompile pass: the same work through the free kernel entry points,
/// which compile a fresh program per call (the pre-cache engine behaviour).
fn recompile_pass(family: &Family, index: &StructureIndex) {
    for plan in &family.plans {
        std::hint::black_box(hom_via_tree_decomposition_indexed(
            plan.evaluated(),
            index,
            &plan.analysis().tree_decomposition,
        ));
        std::hint::black_box(count_hom_via_tree_decomposition_indexed(
            plan.original(),
            index,
            &plan.counting_analysis().tree_decomposition,
        ));
    }
}

fn run_scale(scale: &Scale, config: &EngineConfig) -> ScaleReport {
    let db = scale_corpus(
        scale.elems,
        FACT_RELATIONS,
        scale.fact_tuples,
        scale.selective_tuples,
        CORPUS_SEED,
    );
    assert!(
        db.tuple_count() >= scale.floor_tuples,
        "corpus {} fell below the scale floor: {} < {}",
        scale.name,
        db.tuple_count(),
        scale.floor_tuples
    );
    let build_start = Instant::now();
    let index = StructureIndex::new(&db);
    let index_build = build_start.elapsed();
    println!(
        "E18 [{}]: {} elements, {} tuples | index built in {index_build:.3?}",
        scale.name,
        scale.elems,
        db.tuple_count()
    );

    let prepare = |qs: Vec<Structure>| -> Vec<PreparedQuery> {
        qs.iter()
            .map(|q| PreparedQuery::prepare(q, config))
            .collect()
    };
    let families = [
        Family {
            name: "selective",
            plans: prepare(selective_join_queries()),
            passes: 30,
        },
        Family {
            name: "bulk",
            plans: prepare(scale_join_queries(FACT_RELATIONS)),
            passes: 1,
        },
    ];

    // ---- Correctness before timing -------------------------------------
    // (1) Warm and freshly-recompiled programs agree on every instance.
    let mut comparisons = 0usize;
    for family in &families {
        for plan in &family.plans {
            let warm_decide = plan.decide_via_tree(&index);
            let fresh_decide = hom_via_tree_decomposition_indexed(
                plan.evaluated(),
                &index,
                &plan.analysis().tree_decomposition,
            );
            assert_eq!(warm_decide.exists, fresh_decide.exists, "{}", family.name);
            let warm_count = plan.count_via_tree(&index);
            let fresh_count = count_hom_via_tree_decomposition_indexed(
                plan.original(),
                &index,
                &plan.counting_analysis().tree_decomposition,
            );
            assert_eq!(warm_count.count, fresh_count.count, "{}", family.name);
            comparisons += 2;
        }
    }
    // (2) The engine agrees with brute force on induced subsamples of the
    // same corpus — the in-bench differential oracle.
    let engine = Engine::new(*config);
    let slices: Vec<Structure> = (1..=4)
        .map(|seed| subsample_database(&db, 40, seed))
        .collect();
    let oracle_queries: Vec<Structure> = selective_join_queries()
        .into_iter()
        .chain(scale_join_queries(FACT_RELATIONS))
        .collect();
    for q in &oracle_queries {
        for slice in &slices {
            assert_eq!(engine.solve(q, slice).exists, homomorphism_exists(q, slice));
            comparisons += 1;
        }
    }
    let count_batch: Vec<(&Structure, &Structure)> = oracle_queries
        .iter()
        .flat_map(|q| slices.iter().map(move |s| (q, s)))
        .collect();
    for ((q, slice), report) in count_batch.iter().zip(engine.count_batch(&count_batch)) {
        assert_eq!(report.count, count_homomorphisms_bruteforce(q, slice));
        comparisons += 1;
    }
    println!("  oracle: {comparisons} comparisons, agreement 1.0 (asserted)");

    // ---- Memory columns ------------------------------------------------
    // What one cached database pins: the index shares its structure via
    // `Arc`; the engine's instance cache used to hold a second copy.
    let arc_bytes = index.heap_bytes();
    let clone_bytes = index.heap_bytes() + db.heap_bytes();
    assert!(
        arc_bytes < clone_bytes,
        "sharing the structure must pin strictly less than cloning it"
    );
    let mb = |b: usize| b as f64 / (1024.0 * 1024.0);
    println!(
        "  cached database: {:.2} MiB shared (was {:.2} MiB with a cloned structure, {:.2}x)",
        mb(arc_bytes),
        mb(clone_bytes),
        clone_bytes as f64 / arc_bytes as f64
    );

    // ---- Throughput: warm vs per-call recompilation --------------------
    let runs = timing_runs(3, 5);
    let mut rows: Vec<(&'static str, f64, f64, f64)> = Vec::new();
    for family in &families {
        // Warm the per-index program cache, then meter: the timed warm
        // loops must compile exactly nothing.
        warm_pass(family, &index);
        let compilations_before = program_compilation_count();
        let warm = median_time(runs, || {
            for _ in 0..family.passes {
                warm_pass(family, &index);
            }
        });
        assert_eq!(
            program_compilation_count(),
            compilations_before,
            "warm {} timing loop recompiled a program",
            family.name
        );
        let recompile = median_time(runs, || {
            for _ in 0..family.passes {
                recompile_pass(family, &index);
            }
        });
        let compiled = program_compilation_count() - compilations_before;
        let expected = (runs * family.passes * family.plans.len() * 2) as u64;
        assert_eq!(
            compiled, expected,
            "recompile {} loop must compile once per call",
            family.name
        );
        let instances = (family.passes * family.plans.len()) as f64;
        let warm_tput = instances / warm.as_secs_f64();
        let recompile_tput = instances / recompile.as_secs_f64();
        let speedup = warm_tput / recompile_tput;
        println!(
            "  {:<9} warm {warm_tput:>12.0} inst/s | recompile {recompile_tput:>12.0} inst/s | speedup {speedup:.2}x",
            family.name
        );
        rows.push((family.name, warm_tput, recompile_tput, speedup));
    }

    ScaleReport {
        name: scale.name,
        elems: scale.elems,
        tuples: db.tuple_count(),
        selective_tuples: scale.selective_tuples,
        index_build_ms: index_build.as_secs_f64() * 1e3,
        rows,
        shared_mb: mb(arc_bytes),
        cloned_mb: mb(clone_bytes),
        oracle_comparisons: comparisons,
    }
}

fn bench(c: &mut Criterion) {
    let config = EngineConfig::default();
    let scales: &[Scale] = if quick_mode() {
        &SCALES[..1]
    } else {
        &SCALES[..]
    };
    let reports: Vec<ScaleReport> = scales.iter().map(|s| run_scale(s, &config)).collect();

    // The gated column: warm-vs-recompile speedup of the selective family
    // on the 10^5-tuple corpus.
    let selective_speedup = reports[0].rows[0].3;
    let peak_rss = peak_rss_kb();
    if let Some(kb) = peak_rss {
        println!("  peak RSS {:.1} MiB", kb as f64 / 1024.0);
    }

    if quick_mode() {
        gate_against_baseline(selective_speedup, peak_rss);
        return;
    }

    assert!(
        selective_speedup >= 2.0,
        "E18 acceptance: warm selective throughput on the 1e5 corpus is only \
         {selective_speedup:.2}x per-call recompilation (floor 2x)"
    );
    write_json(&reports, peak_rss);

    // A small criterion group over the 10^5 corpus for the HTML/log view.
    let scale = &SCALES[0];
    let db = scale_corpus(
        scale.elems,
        FACT_RELATIONS,
        scale.fact_tuples,
        scale.selective_tuples,
        CORPUS_SEED,
    );
    let index = StructureIndex::new(&db);
    let selective = Family {
        name: "selective",
        plans: selective_join_queries()
            .iter()
            .map(|q| PreparedQuery::prepare(q, &config))
            .collect(),
        passes: 1,
    };
    let mut g = c.benchmark_group("e18");
    g.sample_size(10);
    g.bench_function("warm: selective decide+count pass (1e5)", |b| {
        b.iter(|| warm_pass(&selective, &index))
    });
    g.bench_function("recompile: selective decide+count pass (1e5)", |b| {
        b.iter(|| recompile_pass(&selective, &index))
    });
    g.finish();
}

/// The CI regression gate of quick mode: the measured warm-vs-recompile
/// speedup on the selective family must hold a generous 1.5x floor, and
/// peak RSS must stay under the checked-in full-mode baseline (which
/// includes the 10x larger 10^6 corpus, so the ceiling is generous by
/// construction; skipped when the platform exposes no `VmHWM`).
fn gate_against_baseline(speedup: f64, peak_rss: Option<u64>) {
    const FLOOR: f64 = 1.5;
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_E18.json");
    let baseline = std::fs::read_to_string(path).ok();
    let recorded = baseline
        .as_deref()
        .and_then(|json| json_field_f64(json, "\"speedup\": "));
    match recorded {
        Some(r) => println!(
            "  quick-mode gate: measured {speedup:.2}x | baseline {r:.2}x | delta {:+.1}%",
            (speedup / r - 1.0) * 100.0
        ),
        None => println!("  quick-mode gate: measured {speedup:.2}x (no readable baseline)"),
    }
    assert!(
        speedup >= FLOOR,
        "E18 scale regression: warm selective throughput is only {speedup:.2}x \
         per-call recompilation (floor {FLOOR}x)"
    );
    match (
        peak_rss,
        baseline
            .as_deref()
            .and_then(|json| json_field_f64(json, "\"peak_rss_mb\": ")),
    ) {
        (Some(kb), Some(base_mb)) if base_mb > 0.0 => {
            let measured_mb = kb as f64 / 1024.0;
            assert!(
                measured_mb <= base_mb,
                "E18 peak-RSS regression: the quick 1e5 run used {measured_mb:.1} MiB, \
                 more than the recorded full-mode baseline ({base_mb:.1} MiB) that \
                 includes the 10x larger 1e6 corpus"
            );
            println!("  quick-mode RSS gate: {measured_mb:.1} MiB <= baseline {base_mb:.1} MiB");
        }
        // The platform measured VmHWM but the baseline is missing or
        // unusable: on CI that means the gate silently never ran — a real
        // RSS regression would sail through.  Fail loudly instead of
        // printing a skip line that looks like a pass.
        (Some(_), base) => panic!(
            "E18 quick-mode RSS gate could not run: /proc/self/status reports VmHWM \
             but the checked-in BENCH_E18.json baseline is {} — refusing to skip \
             the gate on a platform that can enforce it",
            if base.is_none() {
                "missing or unreadable"
            } else {
                "non-positive"
            }
        ),
        // No VmHWM at all: only acceptable off-Linux, where /proc/self/status
        // does not exist.  On Linux a missing VmHWM means the probe broke.
        (None, _) if cfg!(target_os = "linux") => panic!(
            "E18 quick-mode RSS gate could not run: this is Linux but no VmHWM was \
             read from /proc/self/status — the peak-RSS probe is broken"
        ),
        (None, _) => println!("  quick-mode RSS gate skipped (platform exposes no VmHWM)"),
    }
    println!("  quick-mode gate passed: warm scale path holds the {FLOOR}x floor");
}

/// Emit `BENCH_E18.json` at the repository root, machine-readable.
fn write_json(reports: &[ScaleReport], peak_rss: Option<u64>) {
    let corpora = reports
        .iter()
        .map(|r| {
            let families = r
                .rows
                .iter()
                .map(|(name, warm, recompile, speedup)| {
                    format!(
                        "        {{\"family\": \"{name}\", \"warm_instances_per_sec\": {warm:.0}, \
                         \"recompile_instances_per_sec\": {recompile:.0}, \"speedup\": {speedup:.2}}}"
                    )
                })
                .collect::<Vec<_>>()
                .join(",\n");
            format!(
                "    {{\n      \"scale\": \"{}\", \"elements\": {}, \"tuples\": {}, \
                 \"selective_tuples\": {}, \"index_build_ms\": {:.3},\n      \
                 \"families\": [\n{families}\n      ],\n      \
                 \"memory\": {{\"cached_db_shared_mb\": {:.2}, \"cached_db_cloned_mb\": {:.2}, \
                 \"share_savings\": {:.2}}},\n      \
                 \"oracle\": {{\"comparisons\": {}, \"agreement\": 1.0}}\n    }}",
                r.name,
                r.elems,
                r.tuples,
                r.selective_tuples,
                r.index_build_ms,
                r.shared_mb,
                r.cloned_mb,
                r.cloned_mb / r.shared_mb,
                r.oracle_comparisons
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let out = format!(
        "{{\n  \"experiment\": \"e18_scale\",\n  \"seed\": {CORPUS_SEED},\n  \
         \"corpora\": [\n{corpora}\n  ],\n  \"peak_rss_mb\": {:.1},\n  \
         \"warm_recompilations_during_timing\": 0\n}}\n",
        peak_rss.map(|kb| kb as f64 / 1024.0).unwrap_or(0.0),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_E18.json");
    std::fs::write(path, out).expect("write BENCH_E18.json at the repo root");
    println!("  wrote {path}");
}

criterion_group!(benches, bench);
criterion_main!(benches);
