//! E9 — Lemma 3.14 / 3.15, Theorems 3.13/4.6/5.6: embedding problems via
//! colour coding; the hash family h_{p,q} and the embedding solvers.

use cq_solver::colour_coding::{
    embedding_via_colour_coding, find_injective_hash, ColorCodingConfig,
};
use cq_structures::families;
use cq_workloads::random_graph_structure;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    println!("E9: Lemma 3.14 hash family bounds (p < k^2 log n)");
    for k in [3usize, 5, 7] {
        let n = 512;
        let subset: Vec<usize> = (0..k).map(|i| i * 61 % n).collect();
        let (p, q) = find_injective_hash(&subset, k, n).unwrap();
        println!("  k={k} n={n}: found p={p} q={q} (bound {})", k * k * 10);
    }
    println!("E9: P_k embeddings into G(64, 0.06), seed 13");
    let db = random_graph_structure(64, 0.06, 13);
    for k in [4usize, 6, 8] {
        let found = embedding_via_colour_coding(
            &families::path(k),
            &db,
            ColorCodingConfig::for_query_size(k),
        )
        .is_some();
        println!("  k={k}: embedding found = {found}");
    }
    let mut g = c.benchmark_group("e09");
    g.sample_size(10);
    for k in [4usize, 6] {
        let q = families::path(k);
        g.bench_with_input(BenchmarkId::new("embed P_k", k), &k, |b, _| {
            b.iter(|| {
                embedding_via_colour_coding(
                    &q,
                    &db,
                    ColorCodingConfig {
                        trials: 40,
                        seed: 2,
                    },
                )
                .is_some()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
