//! E4 — Theorem 4.3: compile jump-machine acceptance into HOM(P*) instances
//! and verify/measure the blow-up.

use cq_graphs::families::{cycle_graph, grid_graph};
use cq_machine::compile::compile_jump_to_hom_path;
use cq_machine::jump::accepts_jump_machine;
use cq_machine::problems::{StPathInput, StPathMachine};
use cq_structures::homomorphism_exists;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    println!("E4: jump machine -> HOM(P*) blow-up (Theorem 4.3)");
    for (graph, name, k) in [
        (cycle_graph(12), "C12", 6usize),
        (grid_graph(3, 4), "grid3x4", 5),
    ] {
        let s = 0;
        let t = graph.vertex_count() - 1;
        let input = StPathInput { graph, s, t, k };
        let machine_answer = accepts_jump_machine(&StPathMachine, &input).accepted;
        let compiled = compile_jump_to_hom_path(&StPathMachine, &input);
        let hom_answer = homomorphism_exists(&compiled.query, &compiled.database);
        println!(
            "  {name}: k={k} machine={machine_answer} hom={hom_answer} configs={} |B'|={}",
            compiled.configurations,
            compiled.database_size()
        );
        assert_eq!(machine_answer, hom_answer);
    }
    let mut g = c.benchmark_group("e04");
    g.sample_size(10);
    let input = StPathInput {
        graph: cycle_graph(10),
        s: 0,
        t: 5,
        k: 5,
    };
    g.bench_function("compile+solve st-path on C10", |b| {
        b.iter(|| {
            let compiled = compile_jump_to_hom_path(&StPathMachine, &input);
            homomorphism_exists(&compiled.query, &compiled.database)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
