//! E11 — Example 2.2 / Theorem 2.3: the width separations that drive the
//! classification: td(P_k) grows (log k) while pw(P_k) = 1; pw(T_h) grows
//! while tw(T_h) = 1; grids witness unbounded treewidth.

use cq_decomp::{pathwidth_exact, treedepth_exact, treewidth_exact};
use cq_graphs::families::{complete_binary_tree, grid_graph, path_graph};
use cq_graphs::minor::largest_path_minor;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    println!("E11: width separations (Example 2.2)");
    println!("  paths P_k:      k, pw, td");
    for k in [2usize, 4, 8, 16] {
        let g = path_graph(k);
        println!(
            "    {k:>2}  {}  {}",
            pathwidth_exact(&g).0,
            treedepth_exact(&g).0
        );
    }
    println!("  binary trees T_h: h, tw, pw, td, longest path minor");
    for h in [1usize, 2, 3] {
        let g = complete_binary_tree(h);
        println!(
            "    {h}  {}  {}  {}  {}",
            treewidth_exact(&g).0,
            pathwidth_exact(&g).0,
            treedepth_exact(&g).0,
            largest_path_minor(&g)
        );
    }
    println!("  grids k x k: k, tw");
    for k in [2usize, 3, 4] {
        let g = grid_graph(k, k);
        println!("    {k}  {}", treewidth_exact(&g).0);
    }
    let mut grp = c.benchmark_group("e11");
    grp.sample_size(10);
    grp.bench_function("treedepth_exact P_16", |b| {
        let g = path_graph(16);
        b.iter(|| treedepth_exact(&g).0)
    });
    grp.bench_function("pathwidth_exact T_3", |b| {
        let g = complete_binary_tree(3);
        b.iter(|| pathwidth_exact(&g).0)
    });
    grp.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
