//! E16 — the flat evaluation kernel vs the retained reference
//! implementations: per-solver cold/warm timings on the tree-DP/counting
//! stress corpus, with 100% oracle agreement asserted instance by
//! instance.
//!
//! Five rows, one per evaluation path:
//!
//! * `treedec_decide` — reference `hom_via_tree_decomposition` (BTreeMap
//!   tables, linear-scan frontier joins) vs the kernel hash-join DP;
//! * `treedec_count` — the counting DP, reference vs kernel group-sum
//!   joins, on the original-structure certificates;
//! * `pathdp_decide` — the staircase sweep, PartialHom frontier vs flat
//!   rows;
//! * `forest_count` — the Theorem 6.1 (3) sum–product, universe scan vs
//!   prefilter domains;
//! * `backtrack_decide` — the propagating reference search vs the
//!   whole-query kernel program.
//!
//! **Cold** kernel timings rebuild the [`StructureIndex`] per instance
//! (what an engine with index caching disabled pays); **warm** timings
//! reuse prebuilt indexes (what the engine's instance-index cache serves).
//! The reference has no index, so its one series doubles as both.
//!
//! The machine-readable results are written to `BENCH_E16.json` at the
//! repository root — the checked-in before/after that seeds the bench
//! trajectory.
//!
//! **Quick mode** (`CQ_BENCH_QUICK=1`, the CI bench-smoke step): fewer
//! timing runs, no JSON rewrite, no criterion endpoints — instead the
//! measured per-solver warm speedups are diffed against the checked-in
//! `BENCH_E16.json` and the run **fails** if any row drops below the
//! generous 1.5x floor (the checked-in numbers are 3–22x, so only a real
//! kernel regression trips it).

use cq_bench::{json_field_f64, median_time, quick_mode, timing_runs};
use cq_core::{EngineConfig, PreparedQuery};
use cq_solver::backtrack::BacktrackSolver as ReferenceBacktrack;
use cq_solver::kernel;
use cq_structures::{Structure, StructureIndex};
use cq_workloads::kernel_stress_traffic;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

struct SolverRow {
    name: &'static str,
    reference: Duration,
    kernel_cold: Duration,
    kernel_warm: Duration,
    comparisons: usize,
}

impl SolverRow {
    fn speedup_warm(&self) -> f64 {
        self.reference.as_secs_f64() / self.kernel_warm.as_secs_f64()
    }

    fn speedup_cold(&self) -> f64 {
        self.reference.as_secs_f64() / self.kernel_cold.as_secs_f64()
    }
}

/// Time one evaluation path: `reference` and `kernel` both run over every
/// (prepared query, target, warm index) instance; `kernel` receives the
/// index (warm) or rebuilds it (cold).  Oracle agreement is asserted once
/// over the warm pass.
fn measure(
    name: &'static str,
    instances: &[(PreparedQuery, &Structure, StructureIndex)],
    reference: impl Fn(&PreparedQuery, &Structure) -> u64,
    kernel: impl Fn(&PreparedQuery, &StructureIndex) -> u64,
) -> SolverRow {
    // Oracle agreement, instance by instance, before timing anything.
    let mut comparisons = 0usize;
    for (prepared, target, index) in instances {
        let expected = reference(prepared, target);
        let got = kernel(prepared, index);
        assert_eq!(
            got,
            expected,
            "{name}: kernel disagrees with the reference on {} -> {target}",
            prepared.original()
        );
        comparisons += 1;
    }
    let reference_time = median_time(timing_runs(2, 5), || {
        for (prepared, target, _) in instances {
            std::hint::black_box(reference(prepared, target));
        }
    });
    let kernel_cold = median_time(timing_runs(2, 5), || {
        for (prepared, target, _) in instances {
            let index = StructureIndex::new(target);
            std::hint::black_box(kernel(prepared, &index));
        }
    });
    let kernel_warm = median_time(timing_runs(2, 5), || {
        for (prepared, _, index) in instances {
            std::hint::black_box(kernel(prepared, index));
        }
    });
    SolverRow {
        name,
        reference: reference_time,
        kernel_cold,
        kernel_warm,
        comparisons,
    }
}

fn bench(c: &mut Criterion) {
    let (db_count, db_size, repeats, seed) = (4usize, 14usize, 6usize, 16u64);
    let traffic = kernel_stress_traffic(db_count, db_size, repeats, seed);
    let config = EngineConfig::default();
    println!(
        "E16: kernel stress trace of {} instances ({} treewidth-2 queries, {} random targets of {} vertices, seed {})",
        traffic.len(),
        traffic.queries.len(),
        db_count,
        db_size,
        seed
    );

    // Prepare each trace entry once: plan (with counting certificates) +
    // warm index per instance — the solvers then time pure evaluation.
    let instances: Vec<(PreparedQuery, &Structure, StructureIndex)> = traffic
        .trace
        .iter()
        .map(|&(q, d)| {
            let prepared = PreparedQuery::prepare(&traffic.queries[q], &config);
            prepared.counting_analysis(); // materialize counting certificates
            let target = &traffic.databases[d];
            (prepared, target, StructureIndex::new(target))
        })
        .collect();

    let rows = vec![
        measure(
            "treedec_decide",
            &instances,
            |p, t| {
                cq_solver::treedec::hom_via_tree_decomposition(
                    p.evaluated(),
                    t,
                    &p.analysis().tree_decomposition,
                ) as u64
            },
            |p, idx| {
                kernel::hom_via_tree_decomposition_indexed(
                    p.evaluated(),
                    idx,
                    &p.analysis().tree_decomposition,
                )
                .exists as u64
            },
        ),
        measure(
            "treedec_count",
            &instances,
            |p, t| {
                cq_solver::treedec::count_hom_via_tree_decomposition(
                    p.original(),
                    t,
                    &p.counting_analysis().tree_decomposition,
                )
            },
            |p, idx| {
                kernel::count_hom_via_tree_decomposition_indexed(
                    p.original(),
                    idx,
                    &p.counting_analysis().tree_decomposition,
                )
                .count
                .expect_finite()
            },
        ),
        measure(
            "pathdp_decide",
            &instances,
            |p, t| {
                cq_solver::pathdp::hom_via_staircase(p.evaluated(), t, p.staircase()).exists as u64
            },
            |p, idx| {
                kernel::hom_via_staircase_indexed(p.evaluated(), idx, p.staircase()).exists as u64
            },
        ),
        measure(
            "forest_count",
            &instances,
            |p, t| {
                cq_solver::treedepth::count_with_forest(
                    p.original(),
                    t,
                    &p.counting_analysis().elimination_forest,
                )
            },
            |p, idx| {
                kernel::count_with_forest_indexed(
                    p.original(),
                    idx,
                    &p.counting_analysis().elimination_forest,
                )
                .count
                .expect_finite()
            },
        ),
        measure(
            "backtrack_decide",
            &instances,
            |p, t| ReferenceBacktrack::default().exists(p.evaluated(), t) as u64,
            |p, idx| {
                kernel::find_hom_indexed(p.evaluated(), idx, true)
                    .0
                    .is_some() as u64
            },
        ),
    ];

    println!("  solver           |    reference |  kernel cold |  kernel warm | speedup (warm)");
    for row in &rows {
        println!(
            "  {:<16} | {:>12.3?} | {:>12.3?} | {:>12.3?} | {:>6.2}x",
            row.name,
            row.reference,
            row.kernel_cold,
            row.kernel_warm,
            row.speedup_warm()
        );
    }
    let total_reference: f64 = rows.iter().map(|r| r.reference.as_secs_f64()).sum();
    let total_warm: f64 = rows.iter().map(|r| r.kernel_warm.as_secs_f64()).sum();
    println!(
        "  overall: kernel (warm) {:.2}x faster than the reference path; 100% oracle agreement over {} comparisons",
        total_reference / total_warm,
        rows.iter().map(|r| r.comparisons).sum::<usize>()
    );

    if quick_mode() {
        gate_against_baseline(&rows);
        return;
    }

    write_json(&rows, traffic.len(), db_count, db_size, repeats, seed);

    // Two end points through the criterion harness for the uniform
    // `bench ...` output lines the other experiments produce.
    let mut g = c.benchmark_group("e16");
    g.sample_size(10);
    g.bench_function("reference: tree-DP counting over the trace", |b| {
        b.iter(|| {
            instances
                .iter()
                .map(|(p, t, _)| {
                    cq_solver::treedec::count_hom_via_tree_decomposition(
                        p.original(),
                        t,
                        &p.counting_analysis().tree_decomposition,
                    )
                })
                .sum::<u64>()
        })
    });
    g.bench_function(
        "kernel: tree-DP counting over the trace (warm index)",
        |b| {
            b.iter(|| {
                instances
                    .iter()
                    .map(|(p, _, idx)| {
                        kernel::count_hom_via_tree_decomposition_indexed(
                            p.original(),
                            idx,
                            &p.counting_analysis().tree_decomposition,
                        )
                        .count
                        .expect_finite()
                    })
                    .sum::<u64>()
            })
        },
    );
    g.finish();
}

/// The CI regression gate of quick mode: diff the measured warm speedups
/// against the checked-in `BENCH_E16.json` and fail below the 1.5x floor.
fn gate_against_baseline(rows: &[SolverRow]) {
    const FLOOR: f64 = 1.5;
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_E16.json");
    let baseline_json = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("checked-in {path} must be readable: {e}"));
    let baseline = parse_baseline_speedups(&baseline_json);
    println!("  quick-mode gate vs checked-in BENCH_E16.json (floor {FLOOR}x):");
    let mut failures = Vec::new();
    for row in rows {
        let measured = row.speedup_warm();
        let recorded = baseline
            .iter()
            .find(|(name, _)| name == row.name)
            .map(|&(_, s)| s);
        match recorded {
            Some(recorded) => println!(
                "    {:<16} measured {measured:>6.2}x | baseline {recorded:>6.2}x | delta {:>+6.1}%",
                row.name,
                (measured / recorded - 1.0) * 100.0
            ),
            None => failures.push(format!(
                "solver {} missing from the checked-in baseline",
                row.name
            )),
        }
        if measured < FLOOR {
            failures.push(format!(
                "{}: warm speedup {measured:.2}x fell below the {FLOOR}x floor (baseline {:.2}x)",
                row.name,
                recorded.unwrap_or(f64::NAN)
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "E16 kernel speedup regression:\n  {}",
        failures.join("\n  ")
    );
    println!("  quick-mode gate passed: every solver holds the {FLOOR}x floor");
}

/// Per-solver warm speedups scanned out of the checked-in JSON: one
/// record per line, `"solver": "<name>"` and `"speedup_warm": <x>` fields.
fn parse_baseline_speedups(json: &str) -> Vec<(String, f64)> {
    json.lines()
        .filter_map(|line| {
            let solver = cq_bench::json_field(line, "\"solver\": ")?.to_string();
            let speedup = json_field_f64(line, "\"speedup_warm\": ")?;
            Some((solver, speedup))
        })
        .collect()
}

/// Emit `BENCH_E16.json` at the repository root: per-solver cold/warm
/// reference-vs-kernel timings in milliseconds, machine-readable.
fn write_json(
    rows: &[SolverRow],
    instances: usize,
    db_count: usize,
    db_size: usize,
    repeats: usize,
    seed: u64,
) {
    let ms = |d: Duration| d.as_secs_f64() * 1e3;
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"experiment\": \"e16_kernel\",\n");
    out.push_str(&format!(
        "  \"corpus\": {{\"instances\": {instances}, \"db_count\": {db_count}, \"db_size\": {db_size}, \"repeats_per_query\": {repeats}, \"seed\": {seed}}},\n"
    ));
    out.push_str("  \"solvers\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"solver\": \"{}\", \"reference_ms\": {:.3}, \"kernel_cold_ms\": {:.3}, \"kernel_warm_ms\": {:.3}, \"speedup_cold\": {:.2}, \"speedup_warm\": {:.2}, \"oracle_agreement\": 1.0, \"comparisons\": {}}}{}\n",
            row.name,
            ms(row.reference),
            ms(row.kernel_cold),
            ms(row.kernel_warm),
            row.speedup_cold(),
            row.speedup_warm(),
            row.comparisons,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_E16.json");
    std::fs::write(path, out).expect("write BENCH_E16.json at the repo root");
    println!("  wrote {path}");
}

criterion_group!(benches, bench);
criterion_main!(benches);
