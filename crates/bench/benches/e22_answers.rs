//! E22 — answers: first-answer latency and per-answer delay of the
//! bounded-delay enumeration cursor on the 10^5-tuple corpus.
//!
//! The corpora are [`scale_corpus`] variants that differ **only** in the
//! density of the sparse selective relation `S` (the dense fact relations
//! are identical draws): against the endpoint query
//! `S(x0,x1) ∧ R0(x1,x2) ∧ R1(x2,x3)` with `x0, x3` free, the total
//! answer count scales with `|S|` while the structural work per cursor
//! step (pinned DP passes over the same fact relations, candidate scans
//! over the same 4000-element domains) does not.  That contrast is the
//! whole point of the pinned-prefix cursor behind [`Engine::answers`]:
//!
//! * **first-answer latency** — one warm `answers(offset 0, limit 1)`
//!   call: the cursor descends to the lexicographically least answer and
//!   stops, never materialising the rest;
//! * **per-answer delay** — the marginal cost of a row inside one page,
//!   `(T(prefix) − T(first)) / (prefix − 1)`;
//! * **count cost** — [`Engine::count_answers`] for contrast: the grouped
//!   root-bag DP *does* touch every answer group, so its cost legitimately
//!   grows with the answer count the cursor is insensitive to.
//!
//! The gated headline is `delay_ratio`: the max/min per-answer delay
//! across variants whose total answer counts span a gated factor
//! (`answers_span`, ≥ 8x here).  If enumeration secretly materialised or
//! re-scanned the answer set, the delay would track the span; bounded
//! delay keeps the ratio flat.  First-answer latency is gated the same
//! way with a looser ceiling (it is a single µs-scale measurement, noisier
//! by nature).
//!
//! Correctness is asserted before timing, against the structure-agnostic
//! [`answers_bruteforce`] projection (none of the prepared certificates):
//! on the **full 10^5-tuple corpus** of the sparsest variant the engine's
//! count and entire first page must match the reference exactly (count,
//! rows, order), and on seeded induced subsamples of every variant the
//! pages must tile the full reference enumeration with exact `has_more`
//! flags.  Every variant must dispatch to the answer DP (no silent
//! brute-force fallback) and emit strictly ascending rows.
//!
//! Full mode writes the machine-readable `BENCH_E22.json` at the
//! repository root and asserts the acceptance ceilings; quick mode
//! (`CQ_BENCH_QUICK=1`, the CI bench-smoke step) runs only the sparsest
//! variant and a 16x-denser one and gates the same ratios against
//! generous ceilings.

use cq_bench::{json_field_f64, min_time, quick_mode, timing_runs};
use cq_core::{AnswerMethod, Engine, EngineConfig};
use cq_structures::{answers_bruteforce, ConjunctiveQuery, Structure};
use cq_workloads::{scale_corpus, subsample_database};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const CORPUS_SEED: u64 = 0xE22;
const ELEMS: usize = 4_000;
const FACT_RELATIONS: usize = 3;
const FACT_TUPLES: usize = 35_500;
const FLOOR_TUPLES: usize = 100_000;
/// Selective densities of the variants.  Answers scale roughly linearly
/// in `|S|` (one `S`-atom guards the free source); delays must not.
const DENSITIES: [usize; 4] = [100, 400, 1_600, 6_400];

/// The endpoint query: which pairs `(x0, x3)` are joined by a selective
/// edge followed by a two-hop fact path?  Treewidth 1, so the answer DP
/// is licensed under the default engine thresholds; the adjoined answer
/// decomposition pays the two free elements in width.
fn endpoint_query() -> ConjunctiveQuery {
    let mut q = ConjunctiveQuery::new();
    q.atom("S", &["x0", "x1"]);
    q.atom("R0", &["x1", "x2"]);
    q.atom("R1", &["x2", "x3"]);
    q.mark_free("x0").expect("x0 is declared by the S atom");
    q.mark_free("x3").expect("x3 is declared by the R1 atom");
    q
}

/// The brute-force answer rows in the engine's row type, sorted ascending
/// (the order the cursor emits).
fn reference_rows(query: &ConjunctiveQuery, target: &Structure) -> Vec<Vec<u32>> {
    let canonical = query.canonical_structure().expect("valid bench query");
    let free = query.free_element_indices();
    answers_bruteforce(&canonical, target, &free)
        .into_iter()
        .map(|row| row.into_iter().map(|e| e as u32).collect())
        .collect()
}

struct VariantRow {
    selective_tuples: usize,
    tuples: usize,
    answers: u64,
    count_ms: f64,
    first_us: f64,
    delay_us: f64,
}

struct Report {
    prefix: usize,
    rows: Vec<VariantRow>,
    oracle_comparisons: usize,
}

impl Report {
    fn span_of(&self, f: impl Fn(&VariantRow) -> f64) -> f64 {
        let max = self.rows.iter().map(&f).fold(f64::MIN, f64::max);
        let min = self.rows.iter().map(&f).fold(f64::MAX, f64::min);
        max / min
    }

    /// How far the total answer counts spread across variants.
    fn answers_span(&self) -> f64 {
        self.span_of(|r| r.answers as f64)
    }

    /// The gated headline: max/min per-answer delay across that spread.
    fn delay_ratio(&self) -> f64 {
        self.span_of(|r| r.delay_us)
    }

    fn first_ratio(&self) -> f64 {
        self.span_of(|r| r.first_us)
    }
}

fn run(config: &EngineConfig) -> Report {
    let query = endpoint_query();
    // Quick mode keeps the sparsest variant and the 16x-denser one (still
    // a comfortably gated answer span) rather than the 64x-denser top
    // variant, whose grouped count pass alone costs over half a minute.
    let densities: Vec<usize> = if quick_mode() {
        vec![DENSITIES[0], DENSITIES[2]]
    } else {
        DENSITIES.to_vec()
    };
    let prefix = if quick_mode() { 64 } else { 256 };
    let runs = timing_runs(2, 3);
    // The count pass is informational contrast (its cost legitimately
    // grows with the answer count), and it is a deterministic multi-second
    // sweep on the dense variants — time it sparingly.
    let count_runs = timing_runs(1, 2);
    let corpora: Vec<(usize, Structure)> = densities
        .iter()
        .map(|&s| {
            let db = scale_corpus(ELEMS, FACT_RELATIONS, FACT_TUPLES, s, CORPUS_SEED);
            assert!(
                db.tuple_count() >= FLOOR_TUPLES,
                "variant |S|={s} fell below the scale floor: {} < {FLOOR_TUPLES}",
                db.tuple_count()
            );
            (s, db)
        })
        .collect();
    println!(
        "E22: {ELEMS} elements, {} tuples, |S| in {densities:?} | prefix {prefix} rows",
        corpora[0].1.tuple_count()
    );

    // ---- Correctness before timing -------------------------------------
    // (1) Full-corpus differential oracle on the sparsest variant: count
    // and the entire first page against the brute-force projection —
    // exact count, exact rows, exact order, on the actual 10^5-tuple
    // corpus the timings run over.
    let mut comparisons = 0usize;
    {
        let (s, db) = &corpora[0];
        let expected = reference_rows(&query, db);
        let engine = Engine::new(*config);
        let report = engine.count_answers(&query, db);
        assert_eq!(
            report.answers,
            expected.len() as u64,
            "count diverged from brute force on the full |S|={s} corpus"
        );
        let page = engine.answers(&query, db, 0, prefix);
        assert_eq!(
            page.rows.as_slice(),
            &expected[..prefix],
            "first page diverged from brute force on the full |S|={s} corpus"
        );
        comparisons += 1 + prefix;
        println!(
            "  oracle [full corpus, |S|={s}]: count {} and a {prefix}-row page agree with brute force",
            report.answers
        );
    }
    // (2) Induced subsamples of every variant: pages tile the full
    // reference enumeration with exact `has_more` flags.
    let mut subsample_answers = 0usize;
    for (s, db) in &corpora {
        for seed in 1..=2u64 {
            let slice = subsample_database(db, 400, seed);
            let expected = reference_rows(&query, &slice);
            let engine = Engine::new(*config);
            assert_eq!(
                engine.count_answers(&query, &slice).answers,
                expected.len() as u64,
                "subsample count diverged (|S|={s}, seed {seed})"
            );
            let mut offset = 0usize;
            loop {
                let page = engine.answers(&query, &slice, offset as u64, 7);
                let end = (offset + 7).min(expected.len());
                assert_eq!(
                    page.rows.as_slice(),
                    &expected[offset..end],
                    "page at offset {offset} diverged (|S|={s}, seed {seed})"
                );
                assert_eq!(page.has_more, end < expected.len());
                offset = end;
                comparisons += 1;
                if !page.has_more {
                    break;
                }
            }
            assert_eq!(offset, expected.len(), "pages must tile the enumeration");
            subsample_answers += expected.len();
        }
    }
    assert!(
        subsample_answers >= 10,
        "subsample oracle is vacuous: only {subsample_answers} answers across all slices"
    );
    println!(
        "  oracle [subsamples]: {subsample_answers} answers tiled exactly across {} slices; \
         {comparisons} comparisons, agreement 1.0 (asserted)",
        corpora.len() * 2
    );

    // ---- Timing --------------------------------------------------------
    let mut rows: Vec<VariantRow> = Vec::new();
    for (s, db) in &corpora {
        let engine = Engine::new(*config);
        // Warm-up doubles as the per-variant sanity pass: the answer DP
        // must be licensed (no silent brute-force fallback — the cursor is
        // the thing under test) and the prefix must be a strict prefix.
        let report = engine.count_answers(&query, db);
        assert_eq!(
            report.method,
            AnswerMethod::TreeDecompositionDp,
            "variant |S|={s} must dispatch to the answer DP"
        );
        assert!(
            report.answers > prefix as u64,
            "variant |S|={s} has only {} answers; the {prefix}-row prefix must be strict",
            report.answers
        );
        let page = engine.answers(&query, db, 0, prefix);
        assert_eq!(page.rows.len(), prefix);
        assert!(page.has_more, "a strict prefix must report more answers");
        assert!(
            page.rows.windows(2).all(|w| w[0] < w[1]),
            "cursor rows must be strictly ascending"
        );
        // Everything is warm now (plan, index, compiled answer program);
        // what remains is what each call genuinely re-does: one cursor
        // walk (answers) or one grouped root pass (count_answers).
        let t_count = min_time(count_runs, || {
            black_box(engine.count_answers(&query, db));
        });
        let t_first = min_time(runs, || {
            black_box(engine.answers(&query, db, 0, 1));
        });
        let t_prefix = min_time(runs, || {
            black_box(engine.answers(&query, db, 0, prefix));
        });
        let count_ms = t_count.as_secs_f64() * 1e3;
        let first_us = t_first.as_secs_f64() * 1e6;
        let delay_us =
            (t_prefix.saturating_sub(t_first).as_secs_f64() * 1e6 / (prefix - 1) as f64).max(0.001);
        println!(
            "  |S|={s:<5} answers {:>8} | count {count_ms:>9.3} ms | first answer {first_us:>9.1} us | per-answer delay {delay_us:>8.2} us",
            report.answers
        );
        rows.push(VariantRow {
            selective_tuples: *s,
            tuples: db.tuple_count(),
            answers: report.answers,
            count_ms,
            first_us,
            delay_us,
        });
    }

    let report = Report {
        prefix,
        rows,
        oracle_comparisons: comparisons,
    };
    println!(
        "  answers span {:.1}x | per-answer delay ratio {:.2}x | first-answer ratio {:.2}x",
        report.answers_span(),
        report.delay_ratio(),
        report.first_ratio()
    );
    report
}

/// Acceptance ceilings.  The span floor makes the ratio gates meaningful
/// (delays can only be "independent of the answer count" if the counts
/// actually differ); the first-answer ceiling is looser because it is a
/// single short measurement rather than an amortised one.
const FULL_SPAN_FLOOR: f64 = 8.0;
const FULL_DELAY_CEIL: f64 = 5.0;
const FULL_FIRST_CEIL: f64 = 8.0;

fn bench(c: &mut Criterion) {
    let config = EngineConfig::default();
    let report = run(&config);

    if quick_mode() {
        gate_against_baseline(&report);
        return;
    }

    assert!(
        report.answers_span() >= FULL_SPAN_FLOOR,
        "E22 acceptance: the variants' answer counts span only {:.1}x (floor {FULL_SPAN_FLOOR}x) — \
         the delay-independence gates would be vacuous",
        report.answers_span()
    );
    assert!(
        report.delay_ratio() <= FULL_DELAY_CEIL,
        "E22 acceptance: per-answer delay varies {:.2}x across an answer-count span of {:.1}x \
         (ceiling {FULL_DELAY_CEIL}x) — enumeration delay is tracking the answer count",
        report.delay_ratio(),
        report.answers_span()
    );
    assert!(
        report.first_ratio() <= FULL_FIRST_CEIL,
        "E22 acceptance: first-answer latency varies {:.2}x across an answer-count span of {:.1}x \
         (ceiling {FULL_FIRST_CEIL}x)",
        report.first_ratio(),
        report.answers_span()
    );
    write_json(&report);

    // A small criterion group over the densest variant for the HTML/log
    // view: the first answer and a 16-row page, both warm.
    let s = DENSITIES[DENSITIES.len() - 1];
    let db = scale_corpus(ELEMS, FACT_RELATIONS, FACT_TUPLES, s, CORPUS_SEED);
    let query = endpoint_query();
    let engine = Engine::new(config);
    black_box(engine.answers(&query, &db, 0, 1));
    let mut g = c.benchmark_group("e22");
    g.sample_size(10);
    g.bench_function("first answer (1e5, densest)", |b| {
        b.iter(|| black_box(engine.answers(&query, &db, 0, 1)))
    });
    g.bench_function("16-row page (1e5, densest)", |b| {
        b.iter(|| black_box(engine.answers(&query, &db, 0, 16)))
    });
    g.finish();
}

/// The CI regression gate of quick mode: the same span floor and ratio
/// ceilings as full mode, with slack for shared-runner noise and the
/// shorter (64-row, two-variant) measurement.
fn gate_against_baseline(report: &Report) {
    const SPAN_FLOOR: f64 = 4.0;
    const DELAY_CEIL: f64 = 8.0;
    const FIRST_CEIL: f64 = 12.0;
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_E22.json");
    let recorded = std::fs::read_to_string(path)
        .ok()
        .as_deref()
        .and_then(|json| json_field_f64(json, "\"delay_ratio\": "));
    match recorded {
        Some(r) => println!(
            "  quick-mode gate: delay ratio {:.2}x | baseline {r:.2}x",
            report.delay_ratio()
        ),
        None => println!(
            "  quick-mode gate: delay ratio {:.2}x (no readable baseline)",
            report.delay_ratio()
        ),
    }
    assert!(
        report.answers_span() >= SPAN_FLOOR,
        "E22 regression: answer counts span only {:.1}x (floor {SPAN_FLOOR}x) — \
         the delay gate is vacuous",
        report.answers_span()
    );
    assert!(
        report.delay_ratio() <= DELAY_CEIL,
        "E22 regression: per-answer delay varies {:.2}x across an answer-count span of {:.1}x \
         (ceiling {DELAY_CEIL}x)",
        report.delay_ratio(),
        report.answers_span()
    );
    assert!(
        report.first_ratio() <= FIRST_CEIL,
        "E22 regression: first-answer latency varies {:.2}x (ceiling {FIRST_CEIL}x)",
        report.first_ratio()
    );
    println!(
        "  quick-mode gate passed: delay {:.2}x and first-answer {:.2}x ratios hold \
         across a {:.1}x answer span",
        report.delay_ratio(),
        report.first_ratio(),
        report.answers_span()
    );
}

/// Emit `BENCH_E22.json` at the repository root, machine-readable.  The
/// top-level `"delay_ratio"` is the gated headline (and the first such
/// key in the document, which is what the quick-mode gate's scanner
/// reads); the per-variant rows follow.
fn write_json(r: &Report) {
    let variants = r
        .rows
        .iter()
        .map(|v| {
            format!(
                "    {{\"selective_tuples\": {}, \"tuples\": {}, \"answers\": {}, \
                 \"count_ms\": {:.3}, \"first_answer_us\": {:.1}, \"per_answer_delay_us\": {:.2}}}",
                v.selective_tuples, v.tuples, v.answers, v.count_ms, v.first_us, v.delay_us
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let out = format!(
        "{{\n  \"experiment\": \"e22_answers\",\n  \"seed\": {CORPUS_SEED},\n  \
         \"elements\": {ELEMS},\n  \"prefix_rows\": {},\n  \
         \"delay_ratio\": {:.2},\n  \"first_answer_ratio\": {:.2},\n  \
         \"answers_span\": {:.1},\n  \"variants\": [\n{variants}\n  ],\n  \
         \"oracle\": {{\"comparisons\": {}, \"agreement\": 1.0}}\n}}\n",
        r.prefix,
        r.delay_ratio(),
        r.first_ratio(),
        r.answers_span(),
        r.oracle_comparisons
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_E22.json");
    std::fs::write(path, out).expect("write BENCH_E22.json at the repo root");
    println!("  wrote {path}");
}

criterion_group!(benches, bench);
criterion_main!(benches);
