//! E8 — Lemma 3.4 + Remark 3.5: the tree-decomposition reduction preserves
//! homomorphism counts exactly (parsimonious), with polynomial blow-up.

use cq_reductions::treedec_reduction::to_tree_star_instance_auto;
use cq_structures::{count_homomorphisms_bruteforce, families};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    println!("E8: Lemma 3.4 reduction, hom-count preservation (Remark 3.5)");
    for (a, b, name) in [
        (families::cycle(4), families::cycle(6), "C4 -> C6"),
        (families::path(4), families::clique(3), "P4 -> K3"),
        (families::star(3), families::path(4), "K1,3 -> P4"),
    ] {
        let before = count_homomorphisms_bruteforce(&a, &b);
        let reduced = to_tree_star_instance_auto(&a, &b);
        let after = count_homomorphisms_bruteforce(&reduced.query, &reduced.database);
        println!(
            "  {name:<10} count {before} -> {after}  |T*| = {}  |B'| = {}",
            reduced.query.universe_size(),
            reduced.database.universe_size()
        );
        assert_eq!(before, after);
    }
    let mut g = c.benchmark_group("e08");
    g.sample_size(10);
    let a = families::cycle(4);
    let b = families::cycle(8);
    g.bench_function("reduce C4 instance over C8", |bch| {
        bch.iter(|| to_tree_star_instance_auto(&a, &b).database_size)
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
