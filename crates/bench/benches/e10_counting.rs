//! E10 — Theorem 6.1 / Lemma 6.2: the counting classification — sum-product
//! counting for bounded tree depth, tree-DP counting, and the
//! inclusion-exclusion Turing reduction.

use cq_reductions::count_star_via_oracle;
use cq_solver::treedec::count_hom_via_tree_decomposition;
use cq_solver::treedepth::count_hom_via_treedepth;
use cq_structures::ops::colored_target;
use cq_structures::{count_homomorphisms_bruteforce, families};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    println!("E10: counting agreement across algorithms");
    let a = families::path(4);
    let b = families::clique(4);
    let brute = count_homomorphisms_bruteforce(&a, &b);
    let td = count_hom_via_treedepth(&a, &b);
    let (_, dec) = cq_decomp::treewidth::treewidth_of_structure(&a);
    let tree = count_hom_via_tree_decomposition(&a, &b, &dec);
    println!("  #hom(P4, K4): brute={brute} treedepth={td} treeDP={tree}");
    assert_eq!(brute, td);
    assert_eq!(brute, tree);

    let c3 = families::cycle(3);
    let colored = colored_target(3, &families::clique(4), |_| (0..4).collect());
    let mut oracle = |q: &cq_structures::Structure, db: &cq_structures::Structure| {
        Some(count_homomorphisms_bruteforce(q, db))
    };
    let via_ie = count_star_via_oracle(&c3, &colored, &mut oracle).expect("finite oracle answers");
    let direct = count_homomorphisms_bruteforce(&cq_structures::star_expansion(&c3), &colored);
    println!("  #hom(C3*, coloured K4): inclusion-exclusion={via_ie} direct={direct}");
    assert_eq!(via_ie, direct);

    let mut g = c.benchmark_group("e10");
    g.sample_size(10);
    let star = families::star(5);
    let big = families::clique(6);
    g.bench_function("count star into K6: sum-product", |bch| {
        bch.iter(|| count_hom_via_treedepth(&star, &big))
    });
    g.bench_function("count star into K6: brute force", |bch| {
        bch.iter(|| count_homomorphisms_bruteforce(&star, &big))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
