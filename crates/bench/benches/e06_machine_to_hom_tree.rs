//! E6 — Theorem 5.5: compile alternating jump machines into HOM(T*)
//! instances and verify agreement with the alternation semantics.

use cq_machine::alternating::accepts_alternating_machine;
use cq_machine::compile::compile_alternating_to_hom_tree;
use cq_machine::problems::{TreeQueryInput, TreeQueryMachine};
use cq_structures::ops::colored_target;
use cq_structures::{families, homomorphism_exists};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    println!("E6: alternating machine -> HOM(T*) (Theorem 5.5)");
    for r in [1usize, 2] {
        let nodes = families::binary_universe_size(r);
        let db = colored_target(nodes, &families::clique(3), |_| (0..3).collect());
        let input = TreeQueryInput {
            height: r,
            database: db,
        };
        let run = accepts_alternating_machine(&TreeQueryMachine, &input);
        let compiled = compile_alternating_to_hom_tree(&TreeQueryMachine, &input);
        let hom = homomorphism_exists(&compiled.query, &compiled.database);
        println!(
            "  height={r} machine={} hom={} configs={} |B'|={}",
            run.accepted,
            hom,
            compiled.configurations,
            compiled.database_size()
        );
        assert_eq!(run.accepted, hom);
    }
    let mut g = c.benchmark_group("e06");
    g.sample_size(10);
    let nodes = families::binary_universe_size(2);
    let db = colored_target(nodes, &families::clique(3), |_| (0..3).collect());
    let input = TreeQueryInput {
        height: 2,
        database: db,
    };
    g.bench_function("alternating acceptance height=2", |b| {
        b.iter(|| accepts_alternating_machine(&TreeQueryMachine, &input).accepted)
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
