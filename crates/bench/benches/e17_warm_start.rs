//! E17 — warm start: cold preparation vs `load_plans` across the workload
//! fleet.
//!
//! The experiment isolates exactly the cost the plan store amortizes away:
//!
//! * **cold prepare** — a fresh engine prepares every `distinct_query_fleet`
//!   query (core + three exponential width DPs) and materializes the lazy
//!   artifacts (sentence, staircase, counting certificates), i.e. the work
//!   a process restart used to repay in full;
//! * **warm load** — a fresh engine adopts the same plans from a store file:
//!   decode + full verification (fingerprint, hom-equivalence, certificate
//!   validity, sentence recompilation) but **zero** width DPs and zero core
//!   computations — asserted through `PrepStats`, not assumed.
//!
//! Correctness is asserted before timing: the warm engine's decision and
//! counting reports over the whole fleet × target batch are bit-identical
//! to the cold engine's.
//!
//! Full mode writes the machine-readable `BENCH_E17.json` at the repository
//! root.  Quick mode (`CQ_BENCH_QUICK=1`, the CI bench-smoke step) skips
//! the rewrite and instead gates the measured load-vs-prepare speedup
//! against the checked-in baseline with a generous 1.5x floor.

use cq_bench::{json_field_f64, median_time, quick_mode, timing_runs};
use cq_core::{Engine, EngineConfig};
use cq_structures::{families, Structure};
use cq_workloads::distinct_query_fleet;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

const FLEET: usize = 12;

/// The full per-query cost a cold process pays: preparation plus every lazy
/// artifact the store would have carried.
fn prepare_cold(config: EngineConfig, fleet: &[Structure]) -> Engine {
    let engine = Engine::new(config);
    for q in fleet {
        let plan = engine.prepare(q);
        plan.sentence();
        plan.staircase();
        plan.counting_analysis();
    }
    engine
}

fn bench(c: &mut Criterion) {
    let config = EngineConfig {
        workers: 1,
        ..EngineConfig::default()
    };
    let fleet = distinct_query_fleet(FLEET);
    let targets = [
        families::clique(3),
        families::clique(4),
        families::grid(3, 3),
        families::cycle(6),
    ];
    let batch: Vec<(&Structure, &Structure)> = fleet
        .iter()
        .flat_map(|q| targets.iter().map(move |t| (q, t)))
        .collect();
    let mut store_path = std::env::temp_dir();
    store_path.push(format!("cq_e17_plans_{}.bin", std::process::id()));

    // Reference engine: full cold pass, then save the store once.
    let cold_engine = prepare_cold(config, &fleet);
    let cold_reports = cold_engine.solve_batch_instances(&batch);
    let cold_counts = cold_engine.count_batch(&batch);
    let saved = cold_engine.save_plans(&store_path).expect("save_plans");
    assert_eq!(saved, FLEET as u64);
    let store_bytes = std::fs::metadata(&store_path).expect("store file").len();
    println!(
        "E17: {FLEET} distinct queries, {} instances, store file {store_bytes} bytes",
        batch.len()
    );

    // Correctness before timing: a warm engine is bit-identical and runs
    // zero per-query exponential work.
    let warm_engine = Engine::new(config)
        .with_plan_store(&store_path)
        .expect("warm start");
    let stats = warm_engine.prep_stats();
    assert_eq!(stats.plans_loaded, FLEET as u64);
    assert_eq!(stats.plans_rejected, 0);
    assert_eq!(warm_engine.solve_batch_instances(&batch), cold_reports);
    assert_eq!(warm_engine.count_batch(&batch), cold_counts);
    let stats = warm_engine.prep_stats();
    assert_eq!(stats.preparations, 0, "warm path prepared a plan");
    assert_eq!(stats.total_width_calls(), 0, "warm path ran a width DP");
    assert_eq!(stats.core_computations, 0, "warm path recomputed a core");
    println!(
        "  warm engine bit-identical over {} instances, zero width DPs / cores",
        batch.len()
    );

    let cold_prepare = median_time(timing_runs(3, 7), || {
        std::hint::black_box(prepare_cold(config, &fleet));
    });
    let warm_load = median_time(timing_runs(3, 7), || {
        let engine = Engine::new(config);
        let summary = engine.load_plans(&store_path).expect("load_plans");
        assert_eq!(summary.loaded, FLEET as u64);
        std::hint::black_box(engine);
    });
    let speedup = cold_prepare.as_secs_f64() / warm_load.as_secs_f64();
    println!(
        "  cold prepare {cold_prepare:>10.3?} | warm load {warm_load:>10.3?} | speedup {speedup:.2}x"
    );

    let _ = std::fs::remove_file(&store_path);

    if quick_mode() {
        gate_against_baseline(speedup);
        return;
    }

    write_json(cold_prepare, warm_load, speedup, store_bytes, batch.len());

    let mut g = c.benchmark_group("e17");
    g.sample_size(10);
    g.bench_function("cold: prepare fleet (DPs + lazy artifacts)", |b| {
        b.iter(|| std::hint::black_box(prepare_cold(config, &fleet)))
    });
    let reload_path = {
        let engine = prepare_cold(config, &fleet);
        let mut p = std::env::temp_dir();
        p.push(format!("cq_e17_reload_{}.bin", std::process::id()));
        engine.save_plans(&p).expect("save");
        p
    };
    g.bench_function("warm: load_plans (decode + verify, zero DPs)", |b| {
        b.iter(|| {
            let engine = Engine::new(config);
            engine.load_plans(&reload_path).expect("load");
            std::hint::black_box(engine);
        })
    });
    g.finish();
    let _ = std::fs::remove_file(&reload_path);
}

/// The CI regression gate of quick mode: the measured load-vs-prepare
/// speedup must hold a generous 1.5x floor, and is diffed against the
/// checked-in `BENCH_E17.json` for the log.
fn gate_against_baseline(speedup: f64) {
    const FLOOR: f64 = 1.5;
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_E17.json");
    let baseline = std::fs::read_to_string(path)
        .ok()
        .and_then(|json| json_field_f64(&json, "\"speedup\": "));
    match baseline {
        Some(recorded) => println!(
            "  quick-mode gate: measured {speedup:.2}x | baseline {recorded:.2}x | delta {:+.1}%",
            (speedup / recorded - 1.0) * 100.0
        ),
        None => println!("  quick-mode gate: measured {speedup:.2}x (no readable baseline)"),
    }
    assert!(
        speedup >= FLOOR,
        "E17 warm-start regression: load_plans is only {speedup:.2}x faster than cold \
         preparation (floor {FLOOR}x)"
    );
    println!("  quick-mode gate passed: warm start holds the {FLOOR}x floor");
}

/// Emit `BENCH_E17.json` at the repository root, machine-readable.
fn write_json(
    cold_prepare: Duration,
    warm_load: Duration,
    speedup: f64,
    store_bytes: u64,
    instances: usize,
) {
    let ms = |d: Duration| d.as_secs_f64() * 1e3;
    let out = format!(
        "{{\n  \"experiment\": \"e17_warm_start\",\n  \"corpus\": {{\"fleet\": {FLEET}, \
         \"instances\": {instances}, \"store_bytes\": {store_bytes}}},\n  \
         \"cold_prepare_ms\": {:.3},\n  \"warm_load_ms\": {:.3},\n  \"speedup\": {:.2},\n  \
         \"warm_width_dps\": 0,\n  \"warm_core_computations\": 0\n}}\n",
        ms(cold_prepare),
        ms(warm_load),
        speedup
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_E17.json");
    std::fs::write(path, out).expect("write BENCH_E17.json at the repo root");
    println!("  wrote {path}");
}

criterion_group!(benches, bench);
criterion_main!(benches);
