//! E15 — counting through the prepared engine: cold preparation vs
//! cached-plan counting throughput, and the worker sweep over
//! `Engine::count_batch`.
//!
//! Three parts, printed as tables:
//!
//! 1. **Cold vs cached** — the `counting_traffic` trace (closed-form
//!    expected counts) through a fresh engine (every distinct query pays
//!    preparation *and* counting-certificate materialization) vs a warm
//!    engine (pure per-database counting);
//! 2. **Worker sweep** — the same trace with `workers = 1, 2, 4, 8`:
//!    wall-clock per batch; the counts are asserted bit-identical across
//!    all worker counts and equal to the closed forms;
//! 3. **PrepStats audit** — after warm-up, a cached counting run must
//!    perform **zero** additional decomposition passes (the acceptance
//!    criterion of the counting pipeline), asserted via
//!    [`cq_core::PrepStats`].

use cq_bench::median_time;
use cq_core::{CountReport, Engine, EngineConfig};
use cq_workloads::counting_traffic;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn engine_with_workers(workers: usize) -> Engine {
    Engine::new(EngineConfig {
        workers,
        ..EngineConfig::default()
    })
}

fn bench(c: &mut Criterion) {
    // Clique targets big enough that per-instance counting is real work,
    // repeats low enough that cold preparation is a visible share of the
    // batch (the cold/cached ratio is the point of part 1).
    let traffic = counting_traffic(&[4, 5, 6], 6, 42);
    let instances = traffic.instances();
    println!(
        "E15: counting trace of {} instances ({} distinct queries, targets K4/K5/K6)",
        instances.len(),
        traffic.queries.len()
    );

    // ---- Cold vs cached ----
    let cold = median_time(5, || {
        let engine = engine_with_workers(1);
        let reports = engine.count_batch(&instances);
        assert_eq!(reports.len(), instances.len());
    });
    let warm_engine = engine_with_workers(1);
    warm_engine.count_batch(&instances); // warm plans + counting certificates
    let cached = median_time(5, || {
        warm_engine.count_batch(&instances);
    });
    println!("  cold   (prepare + count): {cold:>12.3?}");
    println!(
        "  cached (count only):      {cached:>12.3?}  ({:.2}x)",
        cold.as_secs_f64() / cached.as_secs_f64()
    );

    // ---- PrepStats audit: zero additional decomposition passes ----
    let before = warm_engine.prep_stats();
    warm_engine.count_batch(&instances);
    let after = warm_engine.prep_stats();
    assert_eq!(
        before, after,
        "cached counting run re-ran preparation work: {before:?} -> {after:?}"
    );
    println!(
        "  prep audit: {} preparations, {} counting-certificate materializations, {} width DPs — all before the cached run, none during",
        after.preparations,
        after.counting_preparations,
        after.total_width_calls()
    );

    // ---- Worker sweep: counts bit-identical, closed forms hold ----
    println!("  workers | median batch time | speedup vs workers=1");
    let mut baseline: Option<(Duration, Vec<CountReport>)> = None;
    for workers in [1usize, 2, 4, 8] {
        let engine = engine_with_workers(workers);
        engine.count_batch(&instances); // warm
        let t = median_time(5, || {
            engine.count_batch(&instances);
        });
        let reports = engine.count_batch(&instances);
        for (report, &expected) in reports.iter().zip(&traffic.expected) {
            assert_eq!(report.count, expected, "closed-form count violated");
        }
        let (t1, expected_reports) = baseline.get_or_insert_with(|| (t, reports.clone()));
        assert_eq!(
            &reports, expected_reports,
            "workers={workers} diverged from the sequential reports"
        );
        println!(
            "  {workers:>7} | {t:>17.3?} | {:>6.2}x",
            t1.as_secs_f64() / t.as_secs_f64()
        );
    }

    // The cold/cached end points through the criterion harness, for the
    // uniform `bench ...` output lines the other experiments produce.
    let mut g = c.benchmark_group("e15");
    g.sample_size(10);
    g.bench_function("cold: count_batch, fresh engine each run", |b| {
        b.iter(|| engine_with_workers(1).count_batch(&instances).len())
    });
    g.bench_function("cached: count_batch, warm engine", |b| {
        let engine = engine_with_workers(1);
        engine.count_batch(&instances);
        b.iter(|| engine.count_batch(&instances).len())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
