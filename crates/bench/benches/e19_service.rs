//! E19 — query-service soak: the TCP front-end under concurrent mixed
//! decide/count traffic.
//!
//! An in-process [`cq_service::Server`] on a loopback port is driven by
//! **4 concurrent client threads** in three connection disciplines over
//! the identical deterministic workload:
//!
//! * **naive** — one connection per request (connect, ask, read, close):
//!   the worst client anyone actually writes;
//! * **persistent** — one connection per thread, strict request/response:
//!   the p50/p99 latency column;
//! * **pipelined** — one connection per thread, the whole trace shipped
//!   before the first response is read: singleton requests from different
//!   threads pile up in the server's job queue and the dispatcher
//!   coalesces them into `solve_batch` / `count_batch` fan-outs.
//!
//! Every response (all disciplines) is compared bit-for-bit against a
//! fresh in-process engine; the run aborts on the first disagreement, so
//! the checked-in `agreement: 1.0` is asserted, not asserted-by-hope.
//!
//! Full mode writes `BENCH_E19.json` at the repository root and enforces
//! the acceptance floor: **pipelined throughput ≥ 2x naive** at 4
//! clients.  Quick mode (`CQ_BENCH_QUICK=1`) runs a shrunken soak,
//! re-checks agreement, and gates a generous 1.2x floor plus the
//! checked-in baseline's 2x.

use cq_bench::{json_field_f64, quick_mode};
use cq_core::{CountReport, Engine, EngineConfig, EngineReport};
use cq_service::{Client, QuerySpec, Request, Response, Server, ServiceConfig};
use cq_structures::Structure;
use cq_workloads::{counting_traffic, repeated_query_traffic};
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::{Duration, Instant};

const CLIENTS: usize = 4;
const DECIDE_SEED: u64 = 31;
const COUNT_SEED: u64 = 33;

/// One request of the mixed trace with its precomputed oracle answer.
enum Expected {
    Decide(Structure, Structure, EngineReport),
    Count(Structure, Structure, CountReport),
}

/// The deterministic mixed workload: decide and count instances
/// interleaved, each carrying the in-process engine's answer.  `reps`
/// controls soak length (every repetition replays the same trace, the
/// cached-plan steady state a long-lived service lives in).
fn build_trace(reps: usize) -> Arc<Vec<Expected>> {
    let oracle = Engine::new(EngineConfig::default());
    let decide = repeated_query_traffic(3, 16, 2, DECIDE_SEED);
    let count = counting_traffic(&[3, 4, 5], 1, COUNT_SEED);
    let mut one_round: Vec<Expected> = Vec::new();
    let mut counts = count.trace.iter();
    for &(q, d) in &decide.trace {
        let query = decide.queries[q].clone();
        let db = decide.databases[d].clone();
        let report = oracle.solve(&query, &db);
        one_round.push(Expected::Decide(query, db, report));
        if let Some(&(cq, cd)) = counts.next() {
            let query = count.queries[cq].clone();
            let db = count.databases[cd].clone();
            let report = oracle.count_instance(&query, &db);
            one_round.push(Expected::Count(query, db, report));
        }
    }
    let mut trace = Vec::with_capacity(one_round.len() * reps);
    for _ in 0..reps {
        trace.extend(one_round.iter().map(|e| match e {
            Expected::Decide(q, d, r) => Expected::Decide(q.clone(), d.clone(), r.clone()),
            Expected::Count(q, d, r) => Expected::Count(q.clone(), d.clone(), r.clone()),
        }));
    }
    Arc::new(trace)
}

fn request_of(e: &Expected) -> Request {
    match e {
        Expected::Decide(q, d, _) => Request::Decide {
            query: QuerySpec::Inline(q.clone()),
            database: d.clone(),
        },
        Expected::Count(q, d, _) => Request::Count {
            query: QuerySpec::Inline(q.clone()),
            database: d.clone(),
        },
    }
}

fn check(e: &Expected, response: Response) {
    match (e, response) {
        (Expected::Decide(_, _, want), Response::Decision(got)) => {
            assert_eq!(&got, want, "decide disagrees with the in-process engine")
        }
        (Expected::Count(_, _, want), Response::Count(got)) => {
            assert_eq!(&got, want, "count disagrees with the in-process engine")
        }
        (_, other) => panic!("response kind does not match the request: {other:?}"),
    }
}

fn connect(addr: std::net::SocketAddr) -> Client {
    Client::connect_with_timeout(addr, Some(Duration::from_secs(120))).expect("client connects")
}

/// Discipline 1: one connection per request, 4 threads.  Returns
/// requests/sec.
fn run_naive(addr: std::net::SocketAddr, trace: &Arc<Vec<Expected>>) -> f64 {
    let start = Instant::now();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let trace = Arc::clone(trace);
            std::thread::spawn(move || {
                for e in trace.iter() {
                    let mut client = connect(addr);
                    client.send(&request_of(e)).expect("send");
                    check(e, client.receive().expect("receive"));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("naive client thread");
    }
    (CLIENTS * trace.len()) as f64 / start.elapsed().as_secs_f64()
}

/// Discipline 2: persistent connection, strict request/response.  Returns
/// (requests/sec, all per-request latencies).
fn run_persistent(addr: std::net::SocketAddr, trace: &Arc<Vec<Expected>>) -> (f64, Vec<Duration>) {
    let start = Instant::now();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let trace = Arc::clone(trace);
            std::thread::spawn(move || {
                let mut client = connect(addr);
                let mut latencies = Vec::with_capacity(trace.len());
                for e in trace.iter() {
                    let sent = Instant::now();
                    client.send(&request_of(e)).expect("send");
                    let response = client.receive().expect("receive");
                    latencies.push(sent.elapsed());
                    check(e, response);
                }
                latencies
            })
        })
        .collect();
    let mut all = Vec::new();
    for h in handles {
        all.extend(h.join().expect("persistent client thread"));
    }
    let throughput = (CLIENTS * trace.len()) as f64 / start.elapsed().as_secs_f64();
    (throughput, all)
}

/// Window per pipelined burst: large enough to keep the dispatcher's
/// coalescer fed from all 4 clients at once, small enough that
/// 4 × WINDOW stays under the server's bounded queue (depth 256) — a
/// client that ignores that bound gets `Busy` rejections, by design.
const PIPELINE_WINDOW: usize = 32;

/// Discipline 3: persistent connection, the trace pipelined in windows of
/// [`PIPELINE_WINDOW`] requests before each read burst — the discipline
/// the dispatcher's coalescing feeds on.  Returns requests/sec.
fn run_pipelined(addr: std::net::SocketAddr, trace: &Arc<Vec<Expected>>) -> f64 {
    let start = Instant::now();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let trace = Arc::clone(trace);
            std::thread::spawn(move || {
                let mut client = connect(addr);
                for window in trace.chunks(PIPELINE_WINDOW) {
                    for e in window {
                        client.send(&request_of(e)).expect("send");
                    }
                    for e in window {
                        check(e, client.receive().expect("receive"));
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("pipelined client thread");
    }
    (CLIENTS * trace.len()) as f64 / start.elapsed().as_secs_f64()
}

fn percentile(sorted: &[Duration], p: usize) -> Duration {
    let idx = (sorted.len().saturating_sub(1) * p) / 100;
    sorted[idx]
}

struct SoakReport {
    requests_total: usize,
    naive_rps: f64,
    persistent_rps: f64,
    pipelined_rps: f64,
    speedup: f64,
    p50: Duration,
    p99: Duration,
    coalesced_requests: u64,
}

fn run_soak(reps: usize) -> SoakReport {
    let server = Server::start(
        Engine::new(EngineConfig::default()),
        "127.0.0.1:0",
        ServiceConfig::default(),
    )
    .expect("server boots");
    let addr = server.local_addr();
    let trace = build_trace(reps);

    // Warm the server's plan cache and database indexes once so all three
    // disciplines measure the steady state, not who pays cold preparation.
    {
        let mut client = connect(addr);
        for e in trace.iter().take(trace.len().min(64)) {
            client.send(&request_of(e)).expect("warmup send");
            check(e, client.receive().expect("warmup receive"));
        }
    }

    let naive_rps = run_naive(addr, &trace);
    let (persistent_rps, mut latencies) = run_persistent(addr, &trace);
    let pipelined_rps = run_pipelined(addr, &trace);
    latencies.sort();

    let stats = server.stats();
    assert!(
        stats.server.coalesced_requests > 0,
        "the pipelined discipline never triggered dispatcher coalescing"
    );
    server.shutdown().expect("graceful shutdown");

    SoakReport {
        requests_total: 3 * CLIENTS * trace.len() + trace.len().min(64),
        naive_rps,
        persistent_rps,
        pipelined_rps,
        speedup: pipelined_rps / naive_rps,
        p50: percentile(&latencies, 50),
        p99: percentile(&latencies, 99),
        coalesced_requests: stats.server.coalesced_requests,
    }
}

fn print_report(r: &SoakReport) {
    println!("E19 — query-service soak ({CLIENTS} concurrent clients, mixed decide/count)");
    println!("  {:>12}: {:>10.0} req/s", "naive", r.naive_rps);
    println!(
        "  {:>12}: {:>10.0} req/s   (p50 {:.3} ms, p99 {:.3} ms)",
        "persistent",
        r.persistent_rps,
        r.p50.as_secs_f64() * 1e3,
        r.p99.as_secs_f64() * 1e3
    );
    println!("  {:>12}: {:>10.0} req/s", "pipelined", r.pipelined_rps);
    println!(
        "  pipelined vs naive: {:.2}x   ({} requests coalesced into batch fan-outs)",
        r.speedup, r.coalesced_requests
    );
}

/// The CI regression gate of quick mode: agreement already held (every
/// response was checked on the way), the measured speedup must clear a
/// generous 1.2x floor, and the checked-in full-mode baseline must still
/// promise the 2x acceptance floor.
fn gate_against_baseline(speedup: f64) {
    assert!(
        speedup >= 1.2,
        "E19 quick gate: pipelined throughput is only {speedup:.2}x naive (quick floor 1.2x)"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_E19.json");
    let baseline = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("E19 quick gate: cannot read {path}: {e}"));
    let promised = json_field_f64(&baseline, "\"speedup_coalesced_vs_naive\": ")
        .unwrap_or_else(|| panic!("E19 quick gate: no speedup_coalesced_vs_naive in {path}"));
    assert!(
        promised >= 2.0,
        "E19 quick gate: the checked-in baseline promises only {promised:.2}x \
         (acceptance floor 2x) — re-run the full bench"
    );
    println!("  quick-mode gate: measured {speedup:.2}x, baseline {promised:.2}x — ok");
}

/// Emit `BENCH_E19.json` at the repository root, machine-readable.
fn write_json(r: &SoakReport) {
    let out = format!(
        "{{\n  \"experiment\": \"e19_service\",\n  \"clients\": {CLIENTS},\n  \
         \"seeds\": [{DECIDE_SEED}, {COUNT_SEED}],\n  \
         \"requests_total\": {},\n  \
         \"naive_requests_per_sec\": {:.0},\n  \
         \"persistent_requests_per_sec\": {:.0},\n  \
         \"pipelined_requests_per_sec\": {:.0},\n  \
         \"speedup_coalesced_vs_naive\": {:.2},\n  \
         \"decide_count_p50_ms\": {:.3},\n  \"decide_count_p99_ms\": {:.3},\n  \
         \"coalesced_requests\": {},\n  \"agreement\": 1.0\n}}\n",
        r.requests_total,
        r.naive_rps,
        r.persistent_rps,
        r.pipelined_rps,
        r.speedup,
        r.p50.as_secs_f64() * 1e3,
        r.p99.as_secs_f64() * 1e3,
        r.coalesced_requests,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_E19.json");
    std::fs::write(path, out).expect("write BENCH_E19.json at the repo root");
    println!("  wrote {path}");
}

fn bench(c: &mut Criterion) {
    let report = run_soak(if quick_mode() { 2 } else { 12 });
    print_report(&report);

    if quick_mode() {
        gate_against_baseline(report.speedup);
        return;
    }

    assert!(
        report.speedup >= 2.0,
        "E19 acceptance: pipelined throughput is only {:.2}x naive at {CLIENTS} \
         concurrent clients (floor 2x)",
        report.speedup
    );
    write_json(&report);

    // A small criterion group for the HTML/log view: one pipelined pass of
    // the mixed trace against a running server.
    let server = Server::start(
        Engine::new(EngineConfig::default()),
        "127.0.0.1:0",
        ServiceConfig::default(),
    )
    .expect("server boots");
    let addr = server.local_addr();
    let trace = build_trace(1);
    let mut g = c.benchmark_group("e19");
    g.sample_size(10);
    g.bench_function("pipelined mixed trace (1 client)", |b| {
        b.iter(|| {
            let mut client = connect(addr);
            for e in trace.iter() {
                client.send(&request_of(e)).expect("send");
            }
            for e in trace.iter() {
                check(e, client.receive().expect("receive"));
            }
        })
    });
    g.finish();
    server.shutdown().expect("graceful shutdown");
}

criterion_group!(benches, bench);
criterion_main!(benches);
