//! Shared helpers of the `cq-bench` experiment harness — the timing and
//! CI-gate utilities every `e*` bench target used to copy-paste.
//!
//! The bench targets stay standalone binaries (`harness = false`); this
//! tiny library only centralizes the pieces whose silent divergence would
//! hurt: the median timer the speedup tables are built from, the
//! `CQ_BENCH_QUICK` mode switch the CI bench-smoke job drives, and the
//! minimal JSON field scan used to read the checked-in `BENCH_*.json`
//! baselines (the container is offline — no serde).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Median wall-clock of `runs` executions of `f`.
pub fn median_time(runs: usize, mut f: impl FnMut()) -> Duration {
    let mut times: Vec<Duration> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .collect();
    times.sort();
    times[times.len() / 2]
}

/// Minimum wall-clock of `runs` executions of `f` — the noise-floor
/// estimator for deterministic CPU-bound sweeps.  External interference
/// (scheduler preemption, a busy CI neighbour) only ever *inflates* a
/// sample, so the minimum is the observation closest to the true cost;
/// note the median of an even run count lands on the *worse* middle
/// sample, which on microsecond-scale rows turns container jitter into
/// gate flakes.
pub fn min_time(runs: usize, mut f: impl FnMut()) -> Duration {
    (0..runs.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .min()
        .expect("at least one run")
}

/// Whether the bench runs in CI's quick regression-gate mode
/// (`CQ_BENCH_QUICK` set to anything but empty or `0`): fewer timing runs,
/// no baseline rewrite, measured speedups gated against the checked-in
/// `BENCH_*.json` floors instead.
pub fn quick_mode() -> bool {
    std::env::var("CQ_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// `quick` timing runs in quick mode, `full` otherwise.
pub fn timing_runs(quick: usize, full: usize) -> usize {
    if quick_mode() {
        quick
    } else {
        full
    }
}

/// Minimal scan for a `"key": value` field in a checked-in `BENCH_*.json`
/// line or document (no serde in the offline container).  `key` must
/// include the quotes-colon framing, e.g. `"\"speedup\": "`; the value is
/// read up to the next `,`, `}` or newline, with string quotes trimmed.
pub fn json_field<'a>(text: &'a str, key: &str) -> Option<&'a str> {
    let start = text.find(key)? + key.len();
    let rest = &text[start..];
    let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
    Some(rest[..end].trim().trim_matches('"'))
}

/// [`json_field`] parsed as `f64`.
pub fn json_field_f64(text: &str, key: &str) -> Option<f64> {
    json_field(text, key)?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_runs_is_the_middle() {
        let mut n = 0u64;
        let d = median_time(5, || n += 1);
        assert_eq!(n, 5);
        assert!(d < Duration::from_secs(1));
    }

    #[test]
    fn min_time_runs_at_least_once_and_counts_runs() {
        let mut n = 0u64;
        let _ = min_time(0, || n += 1);
        assert_eq!(n, 1, "a zero-run request still measures once");
        let d = min_time(3, || n += 1);
        assert_eq!(n, 4);
        assert!(d < Duration::from_secs(1));
    }

    #[test]
    fn json_field_scans_lines_and_documents() {
        let line = r#"    {"solver": "treedec_decide", "speedup_warm": 22.12, "x": 1},"#;
        assert_eq!(json_field(line, "\"solver\": "), Some("treedec_decide"));
        assert_eq!(json_field_f64(line, "\"speedup_warm\": "), Some(22.12));
        assert_eq!(json_field(line, "\"missing\": "), None);
        let doc = "{\n  \"speedup\": 10.49,\n  \"z\": 0\n}\n";
        assert_eq!(json_field_f64(doc, "\"speedup\": "), Some(10.49));
    }

    #[test]
    fn timing_runs_respects_quick_mode_env() {
        // The env var is process-global; only assert the non-quick default
        // here (CI sets CQ_BENCH_QUICK for the bench job, not the test job).
        if !quick_mode() {
            assert_eq!(timing_runs(2, 7), 7);
        }
    }
}
