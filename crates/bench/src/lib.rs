//! bench support (intentionally empty: all logic lives in the bench targets)
