//! Commutative semirings — the algebra the evaluation kernel is generic
//! over.
//!
//! The FAQ/AJAR framing (and, for counting CQs specifically, Dell–Roth and
//! Chen–Mengel) observes that deciding and counting homomorphisms are the
//! *same* dynamic program, summing products over different semirings:
//!
//! | instance | carrier | ⊕ | ⊗ | answers |
//! |---|---|---|---|---|
//! | [`BoolSemiring`] | `bool` | ∨ | ∧ | does a homomorphism exist? |
//! | [`CheckedNatSemiring`] | [`Nat`] | `+` (checked) | `×` (checked) | how many are there? |
//! | [`MinCostSemiring`] | [`Cost`] | min | `+` | cheapest homomorphism under per-tuple weights |
//! | [`MaxWeightSemiring`] | [`Cost`] | max | `+` | heaviest homomorphism under per-tuple weights |
//!
//! [`crate::kernel`] implements the sum-of-products once, generic over
//! [`Semiring`]; each public solver entry point is a thin instantiation.
//! Two hooks keep the generic kernel as fast as the specialised code it
//! replaces:
//!
//! * [`Semiring::is_add_absorbing`] — once a running ⊕-accumulation hits an
//!   absorbing element (Boolean `true`; [`Nat::Overflow`]; cost `0` under
//!   min with non-negative weights) no later addend can change it, so the
//!   Boolean instantiation keeps decide's short-circuit *in the algebra*
//!   instead of as a special-cased code path;
//! * [`Semiring::WEIGHTED`] — unweighted semirings compile the per-tuple
//!   weight lookup out of the constraint-check inner loop entirely.
//!
//! Counting in ℕ is **checked**: arithmetic past `u64::MAX` yields the
//! typed [`Nat::Overflow`] value, which is itself absorbing under ⊕ and
//! propagates through ⊗ (except against a genuine zero — an empty branch
//! annihilates whatever the other side was).  Nothing in the kernel
//! saturates, so an astronomically large count can never silently clamp to
//! a plausible wrong number.

/// A commutative semiring `(V, ⊕, ⊗, 0, 1)` the kernel can aggregate in.
///
/// Laws the kernel relies on: ⊕ and ⊗ commutative and associative, ⊗
/// distributes over ⊕, `0` is the ⊕-identity and ⊗-annihilator, `1` the
/// ⊗-identity.  `is_add_absorbing(v)` must only return `true` when
/// `v ⊕ x = v` for **every** `x` — it licenses early exits from ⊕-folds.
pub trait Semiring {
    /// The carrier.
    type Value: Clone + Send + Sync + PartialEq + std::fmt::Debug;

    /// Whether ⊗-factors depend on per-tuple weights.  When `false`, the
    /// kernel skips weight-table lookups (and row-id resolution) entirely.
    const WEIGHTED: bool;

    /// The ⊕-identity (and ⊗-annihilator): the value of an empty sum.
    fn zero() -> Self::Value;

    /// The ⊗-identity: the value of an empty product.
    fn one() -> Self::Value;

    /// `a ⊕ b`.
    fn add(a: &Self::Value, b: &Self::Value) -> Self::Value;

    /// `a ⊗ b`.
    fn mul(a: &Self::Value, b: &Self::Value) -> Self::Value;

    /// Whether `v = 0` (dead table rows are dropped on this test).
    fn is_zero(v: &Self::Value) -> bool;

    /// Whether `v ⊕ x = v` for all `x` — the early-exit licence.  Default:
    /// never.
    fn is_add_absorbing(_v: &Self::Value) -> bool {
        false
    }

    /// Whether ⊕ has (partial) inverses exposed through [`Semiring::sub`].
    /// Incremental maintenance subtracts retracted contributions from
    /// per-key aggregates when this holds and recomputes the key from
    /// scratch when it does not (Bool and the tropical semirings: idempotent
    /// ⊕ forgets multiplicity, so nothing can be un-added).
    const INVERTIBLE: bool = false;

    /// `a ⊖ b`: a value `c` with `c ⊕ b = a`, when one is known.
    ///
    /// Returning `None` is always sound — it sends the caller down the
    /// recompute path.  Implementations must only return `Some(c)` when the
    /// subtraction is exact; [`CheckedNatSemiring`] in particular returns
    /// `None` when `a` is [`Nat::Overflow`], since the true count behind an
    /// overflow is unknown and might re-enter `u64` range after the
    /// retraction.
    fn sub(_a: &Self::Value, _b: &Self::Value) -> Option<Self::Value> {
        None
    }

    /// Inject a tuple weight `w` as a ⊗-factor.  Unweighted semirings map
    /// every weight to `1`.
    fn weight(w: u64) -> Self::Value;
}

/// The Boolean semiring `({⊥,⊤}, ∨, ∧)` — homomorphism **decision**.
#[derive(Debug, Clone, Copy, Default)]
pub struct BoolSemiring;

impl Semiring for BoolSemiring {
    type Value = bool;
    const WEIGHTED: bool = false;

    #[inline]
    fn zero() -> bool {
        false
    }
    #[inline]
    fn one() -> bool {
        true
    }
    #[inline]
    fn add(a: &bool, b: &bool) -> bool {
        *a || *b
    }
    #[inline]
    fn mul(a: &bool, b: &bool) -> bool {
        *a && *b
    }
    #[inline]
    fn is_zero(v: &bool) -> bool {
        !*v
    }
    #[inline]
    fn is_add_absorbing(v: &bool) -> bool {
        // ⊤ ∨ x = ⊤: the instant a witness exists the fold is decided.
        *v
    }
    #[inline]
    fn weight(_w: u64) -> bool {
        true
    }
}

/// A checked natural number: a count that is either exact or known to have
/// left `u64` range.
///
/// `Overflow` is a genuine element of the semiring — absorbing under `+`,
/// propagating through `×` against anything except zero (an empty branch
/// annihilates an overflowed one: `0 × ∞-ish = 0` because the product
/// counts *pairs* of extensions and one side has none).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Nat {
    /// An exact count.
    Finite(u64),
    /// The true count exceeds `u64::MAX`.
    Overflow,
}

impl Nat {
    /// The exact value, or `None` for [`Nat::Overflow`].
    #[inline]
    pub fn finite(self) -> Option<u64> {
        match self {
            Nat::Finite(v) => Some(v),
            Nat::Overflow => None,
        }
    }

    /// The exact value; panics on [`Nat::Overflow`] (test/bench helper for
    /// instances known to fit).
    #[inline]
    pub fn expect_finite(self) -> u64 {
        match self {
            Nat::Finite(v) => v,
            Nat::Overflow => panic!("count overflowed u64"),
        }
    }

    /// Whether the count is non-zero (`Overflow` certainly is).
    #[inline]
    pub fn positive(self) -> bool {
        self != Nat::Finite(0)
    }

    /// Checked sum.
    #[inline]
    pub fn checked_add(self, rhs: Nat) -> Nat {
        match (self, rhs) {
            (Nat::Finite(a), Nat::Finite(b)) => a.checked_add(b).map_or(Nat::Overflow, Nat::Finite),
            _ => Nat::Overflow,
        }
    }

    /// Checked product (`0 × Overflow = 0`).
    #[inline]
    pub fn checked_mul(self, rhs: Nat) -> Nat {
        match (self, rhs) {
            (Nat::Finite(0), _) | (_, Nat::Finite(0)) => Nat::Finite(0),
            (Nat::Finite(a), Nat::Finite(b)) => a.checked_mul(b).map_or(Nat::Overflow, Nat::Finite),
            _ => Nat::Overflow,
        }
    }
}

impl Default for Nat {
    /// Zero — the ⊕-identity (so `#[derive(Default)]` run reports start
    /// from an empty count).
    fn default() -> Nat {
        Nat::Finite(0)
    }
}

impl From<u64> for Nat {
    fn from(v: u64) -> Nat {
        Nat::Finite(v)
    }
}

impl PartialEq<u64> for Nat {
    fn eq(&self, other: &u64) -> bool {
        matches!(self, Nat::Finite(v) if v == other)
    }
}

impl std::fmt::Display for Nat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Nat::Finite(v) => write!(f, "{v}"),
            Nat::Overflow => write!(f, "overflow"),
        }
    }
}

/// The checked counting semiring `(ℕ ∪ {Overflow}, +, ×)` — exact
/// homomorphism **counting** that surfaces overflow instead of clamping.
#[derive(Debug, Clone, Copy, Default)]
pub struct CheckedNatSemiring;

impl Semiring for CheckedNatSemiring {
    type Value = Nat;
    const WEIGHTED: bool = false;

    #[inline]
    fn zero() -> Nat {
        Nat::Finite(0)
    }
    #[inline]
    fn one() -> Nat {
        Nat::Finite(1)
    }
    #[inline]
    fn add(a: &Nat, b: &Nat) -> Nat {
        a.checked_add(*b)
    }
    #[inline]
    fn mul(a: &Nat, b: &Nat) -> Nat {
        a.checked_mul(*b)
    }
    #[inline]
    fn is_zero(v: &Nat) -> bool {
        *v == Nat::Finite(0)
    }
    #[inline]
    fn is_add_absorbing(v: &Nat) -> bool {
        // Overflow + x = Overflow for every natural x.
        *v == Nat::Overflow
    }
    const INVERTIBLE: bool = true;
    #[inline]
    fn sub(a: &Nat, b: &Nat) -> Option<Nat> {
        match (*a, *b) {
            (Nat::Finite(x), Nat::Finite(y)) => x.checked_sub(y).map(Nat::Finite),
            // The exact count behind Overflow is unknown: after a
            // retraction it could be anything, including back in range.
            _ => None,
        }
    }
    #[inline]
    fn weight(_w: u64) -> Nat {
        Nat::Finite(1)
    }
}

/// A tropical value: `None` is the ⊕-identity (`+∞` under min, `-∞` under
/// max), `Some(c)` a finite accumulated weight.  Weight accumulation along
/// a homomorphism saturates at `u64::MAX` (documented: weights are
/// per-tuple `u64`s; a sum past `u64::MAX` reports `u64::MAX`, which keeps
/// min/max comparisons sound for any realistic weighting).
pub type Cost = Option<u64>;

/// The min-plus (tropical) semiring `(ℕ ∪ {∞}, min, +)` — the **cheapest**
/// homomorphism under per-tuple weights.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinCostSemiring;

impl Semiring for MinCostSemiring {
    type Value = Cost;
    const WEIGHTED: bool = true;

    #[inline]
    fn zero() -> Cost {
        None
    }
    #[inline]
    fn one() -> Cost {
        Some(0)
    }
    #[inline]
    fn add(a: &Cost, b: &Cost) -> Cost {
        match (*a, *b) {
            (Some(x), Some(y)) => Some(x.min(y)),
            (v, None) | (None, v) => v,
        }
    }
    #[inline]
    fn mul(a: &Cost, b: &Cost) -> Cost {
        match (*a, *b) {
            (Some(x), Some(y)) => Some(x.saturating_add(y)),
            _ => None,
        }
    }
    #[inline]
    fn is_zero(v: &Cost) -> bool {
        v.is_none()
    }
    #[inline]
    fn is_add_absorbing(v: &Cost) -> bool {
        // Weights are u64s, so no homomorphism can cost less than 0:
        // min(0, x) = 0 for every reachable x.
        *v == Some(0)
    }
    #[inline]
    fn weight(w: u64) -> Cost {
        Some(w)
    }
}

/// The max-plus semiring `(ℕ ∪ {-∞}, max, +)` — the **heaviest**
/// homomorphism under per-tuple weights.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxWeightSemiring;

impl Semiring for MaxWeightSemiring {
    type Value = Cost;
    const WEIGHTED: bool = true;

    #[inline]
    fn zero() -> Cost {
        None
    }
    #[inline]
    fn one() -> Cost {
        Some(0)
    }
    #[inline]
    fn add(a: &Cost, b: &Cost) -> Cost {
        match (*a, *b) {
            (Some(x), Some(y)) => Some(x.max(y)),
            (v, None) | (None, v) => v,
        }
    }
    #[inline]
    fn mul(a: &Cost, b: &Cost) -> Cost {
        match (*a, *b) {
            (Some(x), Some(y)) => Some(x.saturating_add(y)),
            _ => None,
        }
    }
    #[inline]
    fn is_zero(v: &Cost) -> bool {
        v.is_none()
    }
    // No add-absorbing element: saturation makes u64::MAX unsound as one.
    #[inline]
    fn weight(w: u64) -> Cost {
        Some(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn laws<S: Semiring>(samples: &[S::Value]) {
        for a in samples {
            assert_eq!(S::add(a, &S::zero()), *a, "0 is ⊕-identity");
            assert_eq!(S::mul(a, &S::one()), *a, "1 is ⊗-identity");
            assert!(
                S::is_zero(&S::mul(a, &S::zero())),
                "0 annihilates: {a:?} ⊗ 0"
            );
            for b in samples {
                assert_eq!(S::add(a, b), S::add(b, a), "⊕ commutes");
                assert_eq!(S::mul(a, b), S::mul(b, a), "⊗ commutes");
                for c in samples {
                    assert_eq!(
                        S::mul(a, &S::add(b, c)),
                        S::add(&S::mul(a, b), &S::mul(a, c)),
                        "⊗ distributes over ⊕: {a:?} ({b:?} ⊕ {c:?})"
                    );
                }
            }
            if S::is_add_absorbing(a) {
                for b in samples {
                    assert_eq!(S::add(a, b), *a, "absorbing element must absorb {b:?}");
                }
            }
            for b in samples {
                // ⊖ must exactly invert ⊕ whenever it answers at all.
                let sum = S::add(a, b);
                if let Some(c) = S::sub(&sum, b) {
                    assert_eq!(S::add(&c, b), sum, "({a:?} ⊕ {b:?}) ⊖ {b:?} then ⊕ {b:?}");
                }
            }
        }
    }

    #[test]
    fn bool_semiring_laws() {
        laws::<BoolSemiring>(&[false, true]);
    }

    #[test]
    fn checked_nat_semiring_laws() {
        laws::<CheckedNatSemiring>(&[
            Nat::Finite(0),
            Nat::Finite(1),
            Nat::Finite(3),
            Nat::Finite(u64::MAX),
            Nat::Overflow,
        ]);
    }

    #[test]
    fn min_cost_semiring_laws() {
        laws::<MinCostSemiring>(&[None, Some(0), Some(2), Some(9)]);
    }

    #[test]
    fn max_weight_semiring_laws() {
        laws::<MaxWeightSemiring>(&[None, Some(0), Some(2), Some(9)]);
    }

    #[test]
    fn nat_overflow_is_typed_never_clamped() {
        let big = Nat::Finite(u64::MAX);
        assert_eq!(big.checked_add(Nat::Finite(1)), Nat::Overflow);
        assert_eq!(big.checked_mul(Nat::Finite(2)), Nat::Overflow);
        assert_eq!(Nat::Overflow.checked_add(Nat::Finite(0)), Nat::Overflow);
        // A genuinely empty branch annihilates an overflowed one.
        assert_eq!(Nat::Overflow.checked_mul(Nat::Finite(0)), Nat::Finite(0));
        assert_eq!(Nat::Finite(7), 7u64);
        assert_ne!(Nat::Overflow, u64::MAX);
        assert_eq!(Nat::Overflow.to_string(), "overflow");
        assert!(Nat::Overflow.positive());
        assert_eq!(Nat::Finite(5).finite(), Some(5));
        assert_eq!(Nat::Overflow.finite(), None);
    }

    #[test]
    fn subtraction_is_exact_or_refused() {
        const {
            assert!(CheckedNatSemiring::INVERTIBLE);
        }
        assert_eq!(
            CheckedNatSemiring::sub(&Nat::Finite(5), &Nat::Finite(2)),
            Some(Nat::Finite(3))
        );
        assert_eq!(
            CheckedNatSemiring::sub(&Nat::Finite(2), &Nat::Finite(5)),
            None,
            "underflow refused"
        );
        assert_eq!(
            CheckedNatSemiring::sub(&Nat::Overflow, &Nat::Finite(1)),
            None,
            "the count behind an overflow is unknown"
        );
        // Idempotent ⊕ has no inverses: these semirings always recompute.
        const {
            assert!(!BoolSemiring::INVERTIBLE);
            assert!(!MinCostSemiring::INVERTIBLE);
            assert!(!MaxWeightSemiring::INVERTIBLE);
        }
        assert_eq!(BoolSemiring::sub(&true, &true), None);
        assert_eq!(MinCostSemiring::sub(&Some(3), &Some(3)), None);
    }
}
