//! Homomorphism decision and counting by dynamic programming over a tree
//! decomposition of the query — the algorithm licensed by bounded treewidth
//! (the hypothesis of the Classification Theorem and the tractable case of
//! Dalmau–Jonsson's counting classification).
//!
//! For a query structure `A` with a width-`w` tree decomposition of its
//! Gaifman graph, the DP keeps, for every bag, the set of partial
//! homomorphisms on that bag that extend to the entire subtree below it —
//! at most `|B|^{w+1}` of them — and joins children bottom-up.  Every tuple
//! of `A` is a clique in the Gaifman graph and therefore contained in some
//! bag (cf. the proof of Lemma 3.4), so checking tuples bag-locally is
//! complete.
//!
//! Counting uses the same tree but must avoid double counting across
//! overlapping bags; we count extensions of each bag assignment to the
//! subtree below it, dividing the recombination by construction: the count
//! attached to a bag assignment is the number of extensions to the union of
//! the *strictly-below* vertices, so multiplying child counts and summing
//! over child-bag completions is exact.

use cq_decomp::TreeDecomposition;
use cq_graphs::gaifman_graph;
use cq_structures::{Element, PartialHom, Structure};
use std::collections::{BTreeMap, BTreeSet};

/// Enumerate all partial homomorphisms from the elements `bag` of `a` into
/// `b` (assignments of every bag element that satisfy all tuples of `a` lying
/// entirely inside the bag).
///
/// This is the shared **reference** helper behind both the tree DP and the
/// path sweep (the kernel counterpart is
/// [`crate::kernel::bag_rows_indexed`]); it is deliberately simple — full
/// `|B|^{|bag|}` enumeration with a leaf validity check — because it is the
/// oracle the kernel is differentially tested against.
pub(crate) fn reference_bag_assignments(
    a: &Structure,
    b: &Structure,
    bag: &BTreeSet<Element>,
) -> Vec<PartialHom> {
    let elems: Vec<Element> = bag.iter().copied().collect();
    let mut out = Vec::new();
    let mut current: Vec<Element> = Vec::with_capacity(elems.len());
    fn rec(
        a: &Structure,
        b: &Structure,
        elems: &[Element],
        current: &mut Vec<Element>,
        out: &mut Vec<PartialHom>,
    ) {
        if current.len() == elems.len() {
            let h = PartialHom::from_pairs(elems.iter().copied().zip(current.iter().copied()));
            if cq_structures::is_partial_homomorphism(a, b, &h) {
                out.push(h);
            }
            return;
        }
        for candidate in b.universe() {
            current.push(candidate);
            rec(a, b, elems, current, out);
            current.pop();
        }
    }
    rec(a, b, &elems, &mut current, &mut out);
    out
}

/// Root the decomposition tree at bag 0 and return, for every bag, its parent
/// (`usize::MAX` for the root) and a post-order traversal.
fn root_tree(td: &TreeDecomposition) -> (Vec<usize>, Vec<usize>) {
    let n = td.tree.vertex_count();
    let mut parent = vec![usize::MAX; n];
    let mut order = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut stack = vec![(0usize, usize::MAX)];
    let mut pre = Vec::with_capacity(n);
    while let Some((v, p)) = stack.pop() {
        if visited[v] {
            continue;
        }
        visited[v] = true;
        parent[v] = p;
        pre.push(v);
        for w in td.tree.neighbors(v) {
            if !visited[w] {
                stack.push((w, v));
            }
        }
    }
    // Post-order = reverse of preorder for our purposes (children before
    // parents is what matters, and every child appears after its parent in
    // `pre`).
    order.extend(pre.iter().rev().copied());
    (parent, order)
}

/// Decide `HOM(A, B)` by DP over the given tree decomposition of (the
/// Gaifman graph of) `A`.  The decomposition is validated in debug builds.
pub fn hom_via_tree_decomposition(a: &Structure, b: &Structure, td: &TreeDecomposition) -> bool {
    debug_assert!(td.is_valid_for(&gaifman_graph(a)));
    // Elements never mentioned in any bag (possible only if A has isolated
    // elements and the decomposition still covers them — validity guarantees
    // coverage, so nothing to do here).
    let (parent, post) = root_tree(td);
    let n_bags = td.bags.len();
    // For each bag: the set of bag assignments that extend downwards.
    let mut viable: Vec<Option<BTreeSet<PartialHom>>> = vec![None; n_bags];
    for &t in &post {
        let own = reference_bag_assignments(a, b, &td.bags[t]);
        let children: Vec<usize> = td.tree.neighbors(t).filter(|&c| parent[c] == t).collect();
        let mut ok = BTreeSet::new();
        'assignments: for h in own {
            for &c in &children {
                let child_ok = viable[c].as_ref().expect("post-order");
                if !child_ok.iter().any(|hc| hc.compatible(&h)) {
                    continue 'assignments;
                }
            }
            ok.insert(h);
        }
        viable[t] = Some(ok);
    }
    !viable[post[post.len() - 1]]
        .as_ref()
        .expect("root computed")
        .is_empty()
}

/// Count homomorphisms from `a` to `b` by DP over the given tree
/// decomposition.
///
/// For every bag `t` and every assignment `h` of the bag, the DP computes
/// the number of extensions of `h` to the vertices appearing strictly below
/// `t` (in bags of the subtree of `t` but not in `X_t`).  Children are
/// combined by multiplying, for each child `c`, the number of extensions of
/// `h` into the part strictly below `c` plus the new vertices of `X_c`:
/// `Σ_{h_c compatible with h} count(c, h_c)` — the intersection property of
/// tree decompositions guarantees the child parts are disjoint, so the
/// product is exact.
pub fn count_hom_via_tree_decomposition(
    a: &Structure,
    b: &Structure,
    td: &TreeDecomposition,
) -> u64 {
    debug_assert!(td.is_valid_for(&gaifman_graph(a)));
    let (parent, post) = root_tree(td);
    let n_bags = td.bags.len();
    // counts[t]: map from bag assignment to the number of extensions to the
    // union of bags in the subtree of t.
    let mut counts: Vec<Option<BTreeMap<PartialHom, u64>>> = vec![None; n_bags];
    for &t in &post {
        let own = reference_bag_assignments(a, b, &td.bags[t]);
        let children: Vec<usize> = td.tree.neighbors(t).filter(|&c| parent[c] == t).collect();
        // The separator X_t ∩ X_c depends only on the edge, not on the
        // assignment: hoist it out of the per-assignment loop.
        let separators: Vec<Vec<Element>> = children
            .iter()
            .map(|&c| td.bags[t].intersection(&td.bags[c]).copied().collect())
            .collect();
        let mut map = BTreeMap::new();
        for h in own {
            let mut total: u64 = 1;
            for (&c, shared) in children.iter().zip(&separators) {
                let child_counts = counts[c].as_ref().expect("post-order");
                // Number of subtree-of-c extensions compatible with h, where
                // we must not double count the shared vertices X_t ∩ X_c: we
                // sum over child assignments h_c that agree with h on the
                // intersection, and each contributes its own extension count.
                let sum: u64 = child_counts
                    .iter()
                    .filter(|(hc, _)| shared.iter().all(|&v| hc.get(v) == h.get(v)))
                    .map(|(_, &cnt)| cnt)
                    .sum();
                total = total.saturating_mul(sum);
                if total == 0 {
                    break;
                }
            }
            if total > 0 {
                map.insert(h, total);
            }
        }
        counts[t] = Some(map);
    }
    // At the root: each root-bag assignment together with its subtree
    // extension count yields distinct homomorphisms; but homomorphisms are
    // assignments of *all* elements, and the root count for assignment h is
    // the number of extensions of h to everything below, so the total is the
    // sum over root assignments.
    counts[post[post.len() - 1]]
        .as_ref()
        .expect("root computed")
        .values()
        .sum()
}

/// Convenience: compute an optimal tree decomposition of the query's Gaifman
/// graph and run the decision DP.
pub fn hom_with_computed_decomposition(a: &Structure, b: &Structure) -> bool {
    let (_, td) = cq_decomp::treewidth::treewidth_of_structure(a);
    hom_via_tree_decomposition(a, b, &td)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_decomp::treewidth::treewidth_of_structure;
    use cq_structures::{count_homomorphisms_bruteforce, families, homomorphism_exists};

    fn check_decide_and_count(a: &Structure, b: &Structure) {
        let (_, td) = treewidth_of_structure(a);
        assert_eq!(
            hom_via_tree_decomposition(a, b, &td),
            homomorphism_exists(a, b),
            "decision mismatch for {a} -> {b}"
        );
        assert_eq!(
            count_hom_via_tree_decomposition(a, b, &td),
            count_homomorphisms_bruteforce(a, b),
            "count mismatch for {a} -> {b}"
        );
    }

    #[test]
    fn agrees_with_bruteforce_on_paths_and_cycles() {
        let queries = [
            families::path(3),
            families::path(4),
            families::cycle(3),
            families::cycle(4),
            families::cycle(5),
            families::star(3),
        ];
        let targets = [
            families::path(4),
            families::cycle(5),
            families::cycle(6),
            families::clique(3),
            families::grid(2, 3),
        ];
        for a in &queries {
            for b in &targets {
                check_decide_and_count(a, b);
            }
        }
    }

    #[test]
    fn agrees_on_directed_and_higher_width_queries() {
        check_decide_and_count(&families::directed_path(4), &families::directed_cycle(5));
        check_decide_and_count(&families::directed_cycle(3), &families::directed_cycle(6));
        check_decide_and_count(&families::grid(2, 2), &families::clique(4));
        check_decide_and_count(&families::grid(2, 3), &families::grid(3, 3));
        check_decide_and_count(&families::complete_bipartite(2, 2), &families::clique(3));
    }

    #[test]
    fn counting_tree_queries_matches_closed_forms() {
        // Homomorphisms from the star K_{1,l} into K_m: m · (m-1)^l.
        let star3 = families::star(3);
        let k4 = families::clique(4);
        let (_, td) = treewidth_of_structure(&star3);
        assert_eq!(count_hom_via_tree_decomposition(&star3, &k4, &td), 4 * 27);
        // Homomorphisms from P_3 (2 edges) into K_3: 3 * 2 * 2 = 12.
        let p3 = families::path(3);
        let k3 = families::clique(3);
        let (_, td) = treewidth_of_structure(&p3);
        assert_eq!(count_hom_via_tree_decomposition(&p3, &k3, &td), 12);
    }

    #[test]
    fn colored_queries_work() {
        use cq_structures::star_expansion;
        let q = star_expansion(&families::path(3));
        let b = cq_structures::ops::colored_target(3, &families::path(5), |e| vec![e, e + 2]);
        check_decide_and_count(&q, &b);
    }

    #[test]
    fn trivial_decomposition_also_works() {
        // Using the single-bag decomposition reduces the DP to brute force —
        // results must still agree.
        let a = families::cycle(4);
        let b = families::cycle(6);
        let td = TreeDecomposition::trivial(&gaifman_graph(&a));
        assert_eq!(
            hom_via_tree_decomposition(&a, &b, &td),
            homomorphism_exists(&a, &b)
        );
        assert_eq!(
            count_hom_via_tree_decomposition(&a, &b, &td),
            count_homomorphisms_bruteforce(&a, &b)
        );
    }

    #[test]
    fn convenience_wrapper() {
        assert!(hom_with_computed_decomposition(
            &families::cycle(4),
            &families::path(2)
        ));
        assert!(!hom_with_computed_decomposition(
            &families::cycle(3),
            &families::path(2)
        ));
    }
}
