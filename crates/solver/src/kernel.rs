//! The flat evaluation kernel: indexed, allocation-light inner loops for
//! every DP solver in the registry.
//!
//! The reference implementations (`crate::treedec`, `crate::pathdp`,
//! `crate::treedepth::count_with_forest`, the backtracking searches) are
//! correct but spend their time in `BTreeMap<Element, Element>`
//! ([`cq_structures::PartialHom`]) allocations, full-universe
//! `|B|^{|bag|}` enumeration with leaf-only validity checks, and `O(n²)`
//! linear-scan frontier joins.  The kernel replaces all three:
//!
//! * **[`BagProgram`]** — each bag is compiled once per evaluation into a
//!   fixed element order with flat `u32` assignment rows, per-variable
//!   candidate domains from a unary/incidence **prefilter** (an element of
//!   the query occurring at position `p` of a tuple of symbol `R` can only
//!   map to elements of `B` occurring at position `p` of `R^B` — read off
//!   the [`StructureIndex`] posting lists), and constraints checked
//!   **incrementally** the moment their last variable in the order is
//!   assigned, so dead branches prune at depth 1 instead of the leaf;
//! * **separator hash-joins** — the tree DP and the staircase sweep key
//!   child/frontier tables on the projection onto the per-edge separator
//!   (hoisted once per edge): decision becomes an O(1) hash-set existence
//!   lookup, counting a precomputed group-sum lookup;
//! * **index-driven candidate iteration** — the fallback search
//!   ([`find_hom_indexed`]) is the whole-query [`BagProgram`] in fail-first
//!   order, with O(1) tuple membership instead of per-check binary search.
//!
//! No `PartialHom` or `BTreeMap` is constructed in any per-assignment
//! inner loop; the only per-row allocations are the surviving rows and
//! join keys themselves.  The reference implementations remain exported —
//! they are the oracle the differential tests pit the kernel against.

use cq_decomp::{EliminationForest, PathDecomposition, TreeDecomposition};
use cq_structures::{Element, Structure, StructureIndex};
use cq_structures::{SymbolId, Tuple};
use std::collections::{BTreeSet, HashMap, HashSet};

use crate::pathdp::PathDpReport;

/// Query-side compilation shared by every kernel entry point: the
/// query-symbol → index-symbol translation and the per-element candidate
/// domains produced by the unary/incidence prefilter.
///
/// The prefilter is sound for decision *and* counting: it removes a
/// candidate image only when some query tuple containing the element could
/// never be satisfied with it, which no full homomorphism violates.
#[derive(Debug, Clone)]
pub struct QueryDomains {
    /// For each query element, its sorted candidate images in the target.
    domains: Vec<Vec<u32>>,
    /// Query [`SymbolId`] → target [`SymbolId`] (by name).
    sym_map: Vec<Option<SymbolId>>,
    /// `false` when some non-empty query relation has no matching target
    /// relation — no homomorphism can exist at all.
    satisfiable: bool,
}

impl QueryDomains {
    /// Compile the prefilter for `a` against an indexed target.
    pub fn compile(a: &Structure, index: &StructureIndex) -> QueryDomains {
        let sym_map: Vec<Option<SymbolId>> = a
            .vocabulary()
            .ids()
            .map(|id| {
                index
                    .vocabulary()
                    .id_of(a.vocabulary().name(id))
                    .filter(|&t| index.vocabulary().arity(t) == a.vocabulary().arity(id))
            })
            .collect();
        let mut satisfiable = true;
        for id in a.vocabulary().ids() {
            if sym_map[id.index()].is_none() && !a.relation(id).is_empty() {
                satisfiable = false;
            }
        }
        if !satisfiable {
            return QueryDomains {
                domains: vec![Vec::new(); a.universe_size()],
                sym_map,
                satisfiable,
            };
        }
        // Start from the full universe and intersect, for every occurrence
        // of an element at (symbol, position), the target's position domain.
        let full: Vec<u32> = (0..index.universe_size() as u32).collect();
        let mut domains: Vec<Option<Vec<u32>>> = vec![None; a.universe_size()];
        for (sym, t) in a.all_tuples() {
            let target = sym_map[sym.index()].expect("checked non-empty relations above");
            for (pos, &elem) in t.iter().enumerate() {
                let allowed = index.elements_at(target, pos);
                let current = domains[elem].get_or_insert_with(|| full.clone());
                intersect_sorted(current, allowed);
            }
        }
        QueryDomains {
            domains: domains
                .into_iter()
                .map(|d| d.unwrap_or_else(|| full.clone()))
                .collect(),
            sym_map,
            satisfiable,
        }
    }

    /// Whether every non-empty query relation has a target counterpart.
    pub fn satisfiable(&self) -> bool {
        self.satisfiable
    }

    /// The candidate images of one query element.
    pub fn domain(&self, element: Element) -> &[u32] {
        &self.domains[element]
    }
}

/// In-place intersection of a sorted vector with a sorted slice.
fn intersect_sorted(current: &mut Vec<u32>, allowed: &[u32]) {
    let mut write = 0;
    let mut j = 0;
    for i in 0..current.len() {
        let v = current[i];
        while j < allowed.len() && allowed[j] < v {
            j += 1;
        }
        if j < allowed.len() && allowed[j] == v {
            current[write] = v;
            write += 1;
        }
    }
    current.truncate(write);
}

/// One compiled constraint: a query tuple translated to the target symbol,
/// its argument positions rewritten to depths in the bag's element order.
#[derive(Debug, Clone)]
struct Constraint {
    sym: SymbolId,
    arg_depths: Vec<u32>,
}

/// A bag compiled against one indexed target: fixed element order, flat
/// `u32` candidate domains per depth, and the constraints of the query
/// lying entirely inside the bag, grouped by the depth at which their last
/// variable is assigned (see the module docs).
#[derive(Debug, Clone)]
pub struct BagProgram {
    /// The bag's query elements in assignment order.
    elems: Vec<Element>,
    /// Candidate images per depth (prefilter domains).
    domains: Vec<Vec<u32>>,
    /// `checks[d]`: constraints whose deepest variable sits at depth `d`.
    checks: Vec<Vec<Constraint>>,
    /// Largest constraint arity (scratch-buffer sizing).
    max_arity: usize,
}

impl BagProgram {
    /// Compile the tuples of `a` lying entirely inside `elems` (which must
    /// be duplicate-free) into an evaluation program over the given order.
    pub fn compile(a: &Structure, doms: &QueryDomains, elems: &[Element]) -> BagProgram {
        let mut depth_of: HashMap<Element, u32> = HashMap::with_capacity(elems.len());
        for (d, &e) in elems.iter().enumerate() {
            depth_of.insert(e, d as u32);
        }
        let mut checks: Vec<Vec<Constraint>> = vec![Vec::new(); elems.len()];
        let mut max_arity = 0;
        if doms.satisfiable {
            for (sym, t) in a.all_tuples() {
                let Some(arg_depths) = t
                    .iter()
                    .map(|e| depth_of.get(e).copied())
                    .collect::<Option<Vec<u32>>>()
                else {
                    continue; // tuple not entirely inside the bag
                };
                let target = doms.sym_map[sym.index()].expect("satisfiable query");
                let last = arg_depths.iter().copied().max().unwrap_or(0) as usize;
                max_arity = max_arity.max(arg_depths.len());
                checks[last].push(Constraint {
                    sym: target,
                    arg_depths,
                });
            }
        }
        let domains = elems
            .iter()
            .map(|&e| {
                if doms.satisfiable {
                    doms.domains[e].clone()
                } else {
                    Vec::new()
                }
            })
            .collect();
        BagProgram {
            elems: elems.to_vec(),
            domains,
            checks,
            max_arity,
        }
    }

    /// The bag's element order.
    pub fn elems(&self) -> &[Element] {
        &self.elems
    }

    /// Check every constraint anchored at `depth` against the partial row.
    #[inline]
    fn checks_pass(
        &self,
        index: &StructureIndex,
        depth: usize,
        row: &[u32],
        args: &mut Vec<u32>,
    ) -> bool {
        for c in &self.checks[depth] {
            args.clear();
            args.extend(c.arg_depths.iter().map(|&d| row[d as usize]));
            if !index.contains(c.sym, args) {
                return false;
            }
        }
        true
    }
}

/// Per-depth hash-join attached to a [`BagProgram`] enumeration: the key is
/// the row projected onto `key_depths`; the row survives only if the key is
/// present in the table.  `depth` is the deepest key variable, so the join
/// fires as early as the separator is fully assigned.
struct Join<T> {
    depth: usize,
    key_depths: Vec<u32>,
    table: HashMap<Vec<u32>, T>,
}

/// Recursive enumerator over a [`BagProgram`] with optional joins.  `acc`
/// accumulates the product of counting-join factors along the path; the
/// emit callback returns `true` to stop the whole enumeration (early exit
/// for decision).
#[allow(clippy::too_many_arguments)]
fn enumerate<T: JoinValue>(
    program: &BagProgram,
    index: &StructureIndex,
    joins_at: &[Vec<usize>],
    joins: &[Join<T>],
    depth: usize,
    row: &mut [u32],
    args: &mut Vec<u32>,
    key: &mut Vec<u32>,
    acc: u64,
    emit: &mut impl FnMut(&[u32], u64) -> bool,
) -> bool {
    if depth == program.elems.len() {
        return emit(row, acc);
    }
    for &candidate in &program.domains[depth] {
        row[depth] = candidate;
        if !program.checks_pass(index, depth, row, args) {
            continue;
        }
        let mut next_acc = acc;
        let mut pruned = false;
        for &j in &joins_at[depth] {
            let join = &joins[j];
            key.clear();
            key.extend(join.key_depths.iter().map(|&d| row[d as usize]));
            match join.table.get(key.as_slice()) {
                Some(v) => next_acc = v.fold(next_acc),
                None => {
                    pruned = true;
                    break;
                }
            }
        }
        if pruned {
            continue;
        }
        if enumerate(
            program,
            index,
            joins_at,
            joins,
            depth + 1,
            row,
            args,
            key,
            next_acc,
            emit,
        ) {
            return true;
        }
    }
    false
}

/// The value type a join table carries: unit for decision (existence), a
/// group-sum for counting.
trait JoinValue {
    fn fold(&self, acc: u64) -> u64;
}

impl JoinValue for () {
    fn fold(&self, acc: u64) -> u64 {
        acc
    }
}

impl JoinValue for u64 {
    fn fold(&self, acc: u64) -> u64 {
        acc.saturating_mul(*self)
    }
}

/// Run a program with joins, emitting every surviving row.
fn run_program<T: JoinValue>(
    program: &BagProgram,
    index: &StructureIndex,
    joins: Vec<Join<T>>,
    emit: &mut impl FnMut(&[u32], u64) -> bool,
    initial_acc: u64,
) {
    let mut joins_at: Vec<Vec<usize>> = vec![Vec::new(); program.elems.len().max(1)];
    for (j, join) in joins.iter().enumerate() {
        joins_at[join.depth].push(j);
    }
    let mut row = vec![0u32; program.elems.len()];
    let mut args = Vec::with_capacity(program.max_arity);
    let mut key = Vec::new();
    if program.elems.is_empty() {
        // An empty bag has exactly the empty row; empty-key joins were
        // folded into `initial_acc` by the caller.
        emit(&row, initial_acc);
        return;
    }
    enumerate(
        program,
        index,
        &joins_at,
        &joins,
        0,
        &mut row,
        &mut args,
        &mut key,
        initial_acc,
        emit,
    );
}

/// Root the decomposition tree at bag 0: parents (`usize::MAX` for the
/// root) plus a children-before-parents order.
fn root_tree(td: &TreeDecomposition) -> (Vec<usize>, Vec<usize>) {
    let n = td.tree.vertex_count();
    let mut parent = vec![usize::MAX; n];
    let mut visited = vec![false; n];
    let mut stack = vec![(0usize, usize::MAX)];
    let mut pre = Vec::with_capacity(n);
    while let Some((v, p)) = stack.pop() {
        if visited[v] {
            continue;
        }
        visited[v] = true;
        parent[v] = p;
        pre.push(v);
        for w in td.tree.neighbors(v) {
            if !visited[w] {
                stack.push((w, v));
            }
        }
    }
    pre.reverse();
    (parent, pre)
}

/// The viable-row table of one processed bag: the bag's element order plus
/// the surviving rows (flat, `stride = elems.len()`), each with its subtree
/// extension count (decision stores 1).
struct BagTable {
    elems: Vec<Element>,
    rows: Vec<u32>,
    counts: Vec<u64>,
}

impl BagTable {
    fn len(&self) -> usize {
        self.counts.len()
    }

    fn row(&self, i: usize) -> &[u32] {
        let w = self.elems.len();
        &self.rows[i * w..(i + 1) * w]
    }

    /// Positions (in this table's order) of the given separator elements.
    fn positions_of(&self, separator: &[Element]) -> Vec<u32> {
        separator
            .iter()
            .map(|e| {
                self.elems
                    .iter()
                    .position(|x| x == e)
                    .expect("separator ⊆ bag") as u32
            })
            .collect()
    }

    /// Group the rows by their projection onto `positions`, summing counts
    /// — the precomputed group-sum side of the separator hash-join.
    fn group_sums(&self, positions: &[u32]) -> HashMap<Vec<u32>, u64> {
        let mut table: HashMap<Vec<u32>, u64> = HashMap::with_capacity(self.len());
        for i in 0..self.len() {
            let row = self.row(i);
            let key: Vec<u32> = positions.iter().map(|&p| row[p as usize]).collect();
            let slot = table.entry(key).or_insert(0);
            *slot = slot.saturating_add(self.counts[i]);
        }
        table
    }
}

/// Metering of one kernel tree-DP run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TreeDpRun {
    /// Whether a homomorphism exists.
    pub exists: bool,
    /// The number of homomorphisms (only meaningful for the counting entry
    /// point; decision runs leave it 0 on failure / unspecified otherwise).
    pub count: u64,
    /// The largest viable-row table stored for any bag.
    pub peak_table: usize,
}

/// Shared skeleton of the kernel tree DP: bottom-up over the rooted
/// decomposition, each parent-child edge joined by a hash table keyed on
/// the projection onto the (per-edge, hoisted) separator.  `COUNTING`
/// selects group-sum joins (exact counts) vs existence joins with
/// first-row early exit at the root.
fn tree_dp(
    a: &Structure,
    index: &StructureIndex,
    td: &TreeDecomposition,
    counting: bool,
) -> TreeDpRun {
    debug_assert!(td.is_valid_for(&cq_graphs::gaifman_graph(a)));
    let doms = QueryDomains::compile(a, index);
    let mut run = TreeDpRun::default();
    if !doms.satisfiable {
        return run;
    }
    let (parent, post) = root_tree(td);
    let mut tables: Vec<Option<BagTable>> = (0..td.bags.len()).map(|_| None).collect();
    for &t in &post {
        let elems: Vec<Element> = td.bags[t].iter().copied().collect();
        let program = BagProgram::compile(a, &doms, &elems);
        let children: Vec<usize> = td.tree.neighbors(t).filter(|&c| parent[c] == t).collect();
        // Hoist the separator (and its positions on both sides) once per
        // edge; build the child-side hash table over it.
        let mut joins: Vec<Join<u64>> = Vec::with_capacity(children.len());
        let mut initial_acc = 1u64;
        let mut dead = false;
        for &c in &children {
            let child = tables[c].take().expect("children before parents");
            let separator: Vec<Element> = td.bags[t].intersection(&td.bags[c]).copied().collect();
            let child_positions = child.positions_of(&separator);
            let table = child.group_sums(&child_positions);
            if separator.is_empty() {
                // Independent component: a constant factor for every row.
                match table.get([].as_slice()) {
                    Some(&sum) if sum > 0 => {
                        initial_acc = initial_acc.saturating_mul(if counting { sum } else { 1 })
                    }
                    _ => dead = true,
                }
                continue;
            }
            let key_depths: Vec<u32> = separator
                .iter()
                .map(|e| elems.iter().position(|x| x == e).expect("separator ⊆ bag") as u32)
                .collect();
            let depth = key_depths.iter().copied().max().unwrap_or(0) as usize;
            joins.push(Join {
                depth,
                key_depths,
                table,
            });
        }
        let mut table = BagTable {
            elems,
            rows: Vec::new(),
            counts: Vec::new(),
        };
        if !dead {
            let is_root = parent[t] == usize::MAX;
            let early_exit = !counting && is_root;
            run_program(
                &program,
                index,
                joins,
                &mut |row, acc| {
                    if acc > 0 {
                        table.rows.extend_from_slice(row);
                        table.counts.push(if counting { acc } else { 1 });
                    }
                    early_exit && acc > 0
                },
                initial_acc,
            );
        }
        run.peak_table = run.peak_table.max(table.len());
        if table.len() == 0 {
            return run; // some bag admits nothing: no homomorphism
        }
        tables[t] = Some(table);
    }
    let root = *post.last().expect("decompositions have at least one bag");
    let root_table = tables[root].as_ref().expect("root computed");
    run.exists = root_table.len() > 0;
    if counting {
        run.count = root_table
            .counts
            .iter()
            .fold(0u64, |acc, &c| acc.saturating_add(c));
        run.exists = run.count > 0;
    }
    run
}

/// Decide `HOM(A, B)` by the kernel tree DP over a valid tree
/// decomposition of `A`'s Gaifman graph (see the module docs; the
/// reference implementation is [`crate::treedec::hom_via_tree_decomposition`]).
pub fn hom_via_tree_decomposition_indexed(
    a: &Structure,
    index: &StructureIndex,
    td: &TreeDecomposition,
) -> TreeDpRun {
    tree_dp(a, index, td, false)
}

/// Count homomorphisms from `a` into the indexed target by the kernel tree
/// DP (group-sum separator joins; reference:
/// [`crate::treedec::count_hom_via_tree_decomposition`]).
pub fn count_hom_via_tree_decomposition_indexed(
    a: &Structure,
    index: &StructureIndex,
    td: &TreeDecomposition,
) -> TreeDpRun {
    tree_dp(a, index, td, true)
}

/// Decide `HOM(A, B)` by sweeping a staircase path decomposition with flat
/// frontier rows (reference: [`crate::pathdp::hom_via_staircase`]).
///
/// Forget steps project the frontier onto the surviving positions and
/// deduplicate through a hash set (the separator in staircase form is the
/// smaller bag itself); introduce steps extend each row through a
/// [`BagProgram`] whose first depths are pinned to the row.
pub fn hom_via_staircase_indexed(
    a: &Structure,
    index: &StructureIndex,
    stair: &PathDecomposition,
) -> PathDpReport {
    debug_assert!(stair.is_staircase());
    let mut report = PathDpReport {
        exists: false,
        peak_frontier: 0,
        bags: stair.bags.len(),
        width: stair.width(),
    };
    let doms = QueryDomains::compile(a, index);
    if !doms.satisfiable {
        return report;
    }
    // The frontier: rows over `order` (flat, stride = order.len()).
    let mut order: Vec<Element> = match stair.bags.first() {
        Some(first) => first.iter().copied().collect(),
        None => Vec::new(),
    };
    let mut frontier: Vec<u32> = Vec::new();
    let mut frontier_len = 0usize;
    {
        let program = BagProgram::compile(a, &doms, &order);
        run_program(
            &program,
            index,
            Vec::<Join<()>>::new(),
            &mut |row, _| {
                frontier.extend_from_slice(row);
                frontier_len += 1;
                false
            },
            1,
        );
    }
    report.peak_frontier = report.peak_frontier.max(frontier_len);
    if frontier_len == 0 {
        return report;
    }

    for window in stair.bags.windows(2) {
        let (prev, next) = (&window[0], &window[1]);
        let stride = order.len();
        if next.is_subset(prev) {
            // Forget step: project every row onto the surviving positions
            // and deduplicate through a hash set.
            let keep: Vec<Element> = next.iter().copied().collect();
            let positions: Vec<usize> = keep
                .iter()
                .map(|e| order.iter().position(|x| x == e).expect("next ⊆ prev"))
                .collect();
            let mut seen: HashSet<Vec<u32>> = HashSet::with_capacity(frontier_len);
            let mut new_frontier: Vec<u32> = Vec::new();
            let mut new_len = 0usize;
            for i in 0..frontier_len {
                let row = &frontier[i * stride..(i + 1) * stride];
                let projected: Vec<u32> = positions.iter().map(|&p| row[p]).collect();
                if seen.insert(projected.clone()) {
                    new_frontier.extend_from_slice(&projected);
                    new_len += 1;
                }
            }
            order = keep;
            frontier = new_frontier;
            frontier_len = new_len;
        } else {
            // Introduce step: keep the previous order as a pinned prefix
            // and enumerate the new elements behind it.  Constraints fully
            // inside the old bag were checked when it was built; only
            // checks anchored at the new depths run.
            let new_elems: Vec<Element> = next.difference(prev).copied().collect();
            let mut next_order = order.clone();
            next_order.extend(new_elems.iter().copied());
            let program = BagProgram::compile(a, &doms, &next_order);
            let prefix_len = order.len();
            let new_stride = next_order.len();
            let mut new_frontier: Vec<u32> = Vec::new();
            let mut new_len = 0usize;
            let mut row = vec![0u32; new_stride];
            let mut args = Vec::with_capacity(program.max_arity);
            let mut key = Vec::new();
            let joins_at: Vec<Vec<usize>> = vec![Vec::new(); new_stride.max(1)];
            for i in 0..frontier_len {
                row[..prefix_len].copy_from_slice(&frontier[i * stride..(i + 1) * stride]);
                enumerate::<()>(
                    &program,
                    index,
                    &joins_at,
                    &[],
                    prefix_len,
                    &mut row,
                    &mut args,
                    &mut key,
                    1,
                    &mut |full, _| {
                        new_frontier.extend_from_slice(full);
                        new_len += 1;
                        false
                    },
                );
            }
            order = next_order;
            frontier = new_frontier;
            frontier_len = new_len;
        }
        report.peak_frontier = report.peak_frontier.max(frontier_len);
        if frontier_len == 0 {
            return report;
        }
    }
    report.exists = frontier_len > 0;
    report
}

/// A forest compiled for the sum–product recursion: per node, the
/// constraints anchored at it (the tuples of the query whose deepest
/// element in the forest it is — all other elements are ancestors, hence
/// assigned when the node is visited).
struct ForestProgram {
    children: Vec<Vec<usize>>,
    roots: Vec<usize>,
    checks: Vec<Vec<(SymbolId, Tuple)>>,
    max_arity: usize,
}

impl ForestProgram {
    fn compile(a: &Structure, doms: &QueryDomains, forest: &EliminationForest) -> ForestProgram {
        let depths = forest.depths();
        let mut checks: Vec<Vec<(SymbolId, Tuple)>> = vec![Vec::new(); a.universe_size()];
        let mut max_arity = 0;
        if doms.satisfiable {
            for (sym, t) in a.all_tuples() {
                let target = doms.sym_map[sym.index()].expect("satisfiable query");
                let anchor = t
                    .iter()
                    .copied()
                    .max_by_key(|&e| depths[e])
                    .expect("tuples are non-empty");
                max_arity = max_arity.max(t.len());
                checks[anchor].push((target, t.clone()));
            }
        }
        ForestProgram {
            children: forest.children(),
            roots: forest.roots(),
            checks,
            max_arity,
        }
    }
}

/// Result of a kernel forest evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ForestRun {
    /// Whether a homomorphism exists.
    pub exists: bool,
    /// The number of homomorphisms (exact for the counting entry point;
    /// the decision entry point stops early and leaves it unspecified).
    pub count: u64,
    /// Candidate images tried across the whole run (a work figure).
    pub assignments: u64,
}

/// Shared recursion of the forest evaluations: count extensions of the
/// current ancestor assignment to the subtree at `v`; with `decide` set,
/// stop at the first witness (the count degenerates to 0/1).
#[allow(clippy::too_many_arguments)]
fn forest_subtree(
    program: &ForestProgram,
    doms: &QueryDomains,
    index: &StructureIndex,
    v: usize,
    assignment: &mut [u32],
    args: &mut Vec<u32>,
    stats: &mut u64,
    decide: bool,
) -> u64 {
    let mut total = 0u64;
    'candidates: for &image in doms.domain(v) {
        *stats += 1;
        assignment[v] = image;
        for (sym, t) in &program.checks[v] {
            args.clear();
            args.extend(t.iter().map(|&e| assignment[e]));
            if !index.contains(*sym, args) {
                continue 'candidates;
            }
        }
        let mut product = 1u64;
        for &c in &program.children[v] {
            let c_count = forest_subtree(program, doms, index, c, assignment, args, stats, decide);
            product = product.saturating_mul(c_count);
            if product == 0 {
                break;
            }
        }
        total = total.saturating_add(product);
        if decide && total > 0 {
            return total;
        }
    }
    total
}

/// Shared driver of the forest evaluations.
fn forest_eval(
    a: &Structure,
    index: &StructureIndex,
    forest: &EliminationForest,
    decide: bool,
) -> ForestRun {
    debug_assert!(forest.is_valid_for(&cq_graphs::gaifman_graph(a)));
    let doms = QueryDomains::compile(a, index);
    let mut run = ForestRun::default();
    if !doms.satisfiable {
        return run;
    }
    let program = ForestProgram::compile(a, &doms, forest);
    let mut assignment = vec![0u32; a.universe_size()];
    let mut args = Vec::with_capacity(program.max_arity);
    let mut result = 1u64;
    for &root in &program.roots {
        let c = forest_subtree(
            &program,
            &doms,
            index,
            root,
            &mut assignment,
            &mut args,
            &mut run.assignments,
            decide,
        );
        result = result.saturating_mul(c);
        if result == 0 {
            break;
        }
    }
    run.count = result;
    run.exists = result > 0;
    run
}

/// Count homomorphisms by the kernel sum–product recursion over an
/// elimination forest of `a` (reference:
/// [`crate::treedepth::count_with_forest`]).
pub fn count_with_forest_indexed(
    a: &Structure,
    index: &StructureIndex,
    forest: &EliminationForest,
) -> ForestRun {
    forest_eval(a, index, forest, false)
}

/// Decide `HOM(A, B)` by the same recursion with first-witness early exit
/// — the kernel decision procedure licensed by bounded tree depth.
pub fn hom_via_forest_indexed(
    a: &Structure,
    index: &StructureIndex,
    forest: &EliminationForest,
) -> ForestRun {
    forest_eval(a, index, forest, true)
}

/// Statistics of one kernel backtracking search.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelSearchStats {
    /// Candidate images tried.
    pub assignments: u64,
    /// Whether the prefilter alone refuted the instance (some domain
    /// empty before any search).
    pub decided_by_prefilter: bool,
}

/// The structure-agnostic kernel fallback: the whole query compiled as a
/// single [`BagProgram`] (index-driven candidate domains, incremental
/// constraint checks) searched for a first complete row.
///
/// With `fail_first` the element order is by increasing prefilter-domain
/// size; otherwise element order.  Returns the witness as a total map plus
/// search statistics.  (Reference: the backtracking searches of
/// [`crate::backtrack::BacktrackSolver`] and
/// [`cq_structures::find_homomorphism`].)
pub fn find_hom_indexed(
    a: &Structure,
    index: &StructureIndex,
    fail_first: bool,
) -> (Option<Vec<Element>>, KernelSearchStats) {
    let doms = QueryDomains::compile(a, index);
    let mut stats = KernelSearchStats::default();
    if !doms.satisfiable || doms.domains.iter().any(|d| d.is_empty()) {
        stats.decided_by_prefilter = true;
        return (None, stats);
    }
    let mut order: Vec<Element> = (0..a.universe_size()).collect();
    if fail_first {
        order.sort_by_key(|&e| doms.domains[e].len());
    }
    let program = BagProgram::compile(a, &doms, &order);
    let mut witness: Option<Vec<Element>> = None;
    // Count assignments through a depth-tracking emit wrapper: every
    // candidate write is one assignment, counted in `checks_pass`'s caller
    // — run_program has no hook, so search manually here.
    let mut row = vec![0u32; order.len()];
    let mut args = Vec::with_capacity(program.max_arity);
    fn search(
        program: &BagProgram,
        index: &StructureIndex,
        depth: usize,
        row: &mut [u32],
        args: &mut Vec<u32>,
        assignments: &mut u64,
    ) -> bool {
        if depth == program.elems.len() {
            return true;
        }
        for &candidate in &program.domains[depth] {
            *assignments += 1;
            row[depth] = candidate;
            if program.checks_pass(index, depth, row, args)
                && search(program, index, depth + 1, row, args, assignments)
            {
                return true;
            }
        }
        false
    }
    if search(
        &program,
        index,
        0,
        &mut row,
        &mut args,
        &mut stats.assignments,
    ) {
        let mut total = vec![0 as Element; a.universe_size()];
        for (d, &e) in order.iter().enumerate() {
            total[e] = row[d] as Element;
        }
        witness = Some(total);
    }
    (witness, stats)
}

/// Enumerate the valid assignments of one bag as flat rows over the sorted
/// bag order — the kernel replacement for the reference `bag_assignments`
/// helper (exposed for tests and ad-hoc callers).
pub fn bag_rows_indexed(
    a: &Structure,
    index: &StructureIndex,
    bag: &BTreeSet<Element>,
) -> (Vec<Element>, Vec<u32>) {
    let doms = QueryDomains::compile(a, index);
    let elems: Vec<Element> = bag.iter().copied().collect();
    let program = BagProgram::compile(a, &doms, &elems);
    let mut rows = Vec::new();
    if doms.satisfiable {
        run_program(
            &program,
            index,
            Vec::<Join<()>>::new(),
            &mut |row, _| {
                rows.extend_from_slice(row);
                false
            },
            1,
        );
    }
    (elems, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_decomp::pathwidth::pathwidth_of_structure;
    use cq_decomp::treedepth::treedepth_exact;
    use cq_decomp::treewidth::treewidth_of_structure;
    use cq_graphs::gaifman_graph;
    use cq_structures::{
        count_homomorphisms_bruteforce, families, homomorphism_exists, star_expansion,
    };

    fn pairs() -> Vec<(Structure, Structure)> {
        let queries = [
            families::path(3),
            families::path(5),
            families::cycle(3),
            families::cycle(4),
            families::cycle(5),
            families::star(3),
            families::directed_path(4),
            families::grid(2, 2),
            families::complete_bipartite(2, 2),
        ];
        let targets = [
            families::path(4),
            families::cycle(5),
            families::cycle(6),
            families::clique(3),
            families::clique(4),
            families::grid(2, 3),
            families::directed_cycle(5),
        ];
        queries
            .iter()
            .flat_map(|a| targets.iter().map(move |b| (a.clone(), b.clone())))
            .collect()
    }

    #[test]
    fn tree_dp_decision_and_count_match_bruteforce() {
        for (a, b) in pairs() {
            let (_, td) = treewidth_of_structure(&a);
            let index = StructureIndex::new(&b);
            let decide = hom_via_tree_decomposition_indexed(&a, &index, &td);
            assert_eq!(decide.exists, homomorphism_exists(&a, &b), "{a} -> {b}");
            let count = count_hom_via_tree_decomposition_indexed(&a, &index, &td);
            assert_eq!(
                count.count,
                count_homomorphisms_bruteforce(&a, &b),
                "{a} -> {b}"
            );
        }
    }

    #[test]
    fn staircase_sweep_matches_reference() {
        for (a, b) in pairs() {
            let (_, pd) = pathwidth_of_structure(&a);
            let stair = pd.normalize_staircase();
            let index = StructureIndex::new(&b);
            let kernel = hom_via_staircase_indexed(&a, &index, &stair);
            let reference = crate::pathdp::hom_via_staircase(&a, &b, &stair);
            assert_eq!(kernel.exists, reference.exists, "{a} -> {b}");
            assert_eq!(kernel.bags, reference.bags);
            assert_eq!(kernel.width, reference.width);
            // The kernel prefilter can only shrink the frontier.
            assert!(
                kernel.peak_frontier <= reference.peak_frontier,
                "kernel frontier grew on {a} -> {b}"
            );
        }
    }

    #[test]
    fn forest_count_and_decide_match_bruteforce() {
        for (a, b) in pairs() {
            let g = gaifman_graph(&a);
            let (_, forest) = treedepth_exact(&g);
            let index = StructureIndex::new(&b);
            let count = count_with_forest_indexed(&a, &index, &forest);
            assert_eq!(
                count.count,
                count_homomorphisms_bruteforce(&a, &b),
                "{a} -> {b}"
            );
            let decide = hom_via_forest_indexed(&a, &index, &forest);
            assert_eq!(decide.exists, homomorphism_exists(&a, &b), "{a} -> {b}");
        }
    }

    #[test]
    fn whole_query_search_matches_reference() {
        for (a, b) in pairs() {
            let index = StructureIndex::new(&b);
            for fail_first in [true, false] {
                let (witness, _) = find_hom_indexed(&a, &index, fail_first);
                assert_eq!(witness.is_some(), homomorphism_exists(&a, &b), "{a} -> {b}");
                if let Some(h) = witness {
                    assert!(cq_structures::is_homomorphism(&a, &b, &h), "{a} -> {b}");
                }
            }
        }
    }

    #[test]
    fn colored_instances_prefilter_to_singletons() {
        let q = star_expansion(&families::path(4));
        let index = StructureIndex::new(&q);
        let doms = QueryDomains::compile(&q, &index);
        assert!(doms.satisfiable());
        for e in 0..q.universe_size() {
            assert_eq!(doms.domain(e), &[e as u32], "colour pins element {e}");
        }
        let (witness, stats) = find_hom_indexed(&q, &index, true);
        assert!(witness.is_some());
        assert_eq!(stats.assignments, q.universe_size() as u64);
    }

    #[test]
    fn missing_target_symbol_is_unsatisfiable() {
        let q = star_expansion(&families::path(3));
        let plain = families::path(5);
        let index = StructureIndex::new(&plain);
        let doms = QueryDomains::compile(&q, &index);
        assert!(!doms.satisfiable());
        let (_, td) = treewidth_of_structure(&q);
        assert!(!hom_via_tree_decomposition_indexed(&q, &index, &td).exists);
        assert_eq!(
            count_hom_via_tree_decomposition_indexed(&q, &index, &td).count,
            0
        );
        let (_, pd) = pathwidth_of_structure(&q);
        assert!(!hom_via_staircase_indexed(&q, &index, &pd.normalize_staircase()).exists);
        let g = gaifman_graph(&q);
        let (_, forest) = treedepth_exact(&g);
        assert_eq!(count_with_forest_indexed(&q, &index, &forest).count, 0);
        let (witness, stats) = find_hom_indexed(&q, &index, true);
        assert!(witness.is_none());
        assert!(stats.decided_by_prefilter);
    }

    #[test]
    fn trivial_decomposition_reduces_to_prefiltered_bruteforce() {
        let a = families::cycle(4);
        let b = families::cycle(6);
        let td = TreeDecomposition::trivial(&gaifman_graph(&a));
        let index = StructureIndex::new(&b);
        assert!(hom_via_tree_decomposition_indexed(&a, &index, &td).exists);
        assert_eq!(
            count_hom_via_tree_decomposition_indexed(&a, &index, &td).count,
            count_homomorphisms_bruteforce(&a, &b)
        );
    }

    #[test]
    fn bag_rows_match_reference_bag_assignments() {
        let a = families::cycle(5);
        let b = families::clique(3);
        let index = StructureIndex::new(&b);
        let bag: BTreeSet<Element> = [0, 1, 2].into_iter().collect();
        let (elems, rows) = bag_rows_indexed(&a, &index, &bag);
        assert_eq!(elems, vec![0, 1, 2]);
        let stride = elems.len();
        let mut kernel_rows: Vec<Vec<u32>> = rows.chunks(stride).map(|r| r.to_vec()).collect();
        kernel_rows.sort();
        let reference = crate::treedec::reference_bag_assignments(&a, &b, &bag);
        let mut reference_rows: Vec<Vec<u32>> = reference
            .iter()
            .map(|h| elems.iter().map(|&e| h.get(e).unwrap() as u32).collect())
            .collect();
        reference_rows.sort();
        assert_eq!(kernel_rows, reference_rows);
    }

    #[test]
    fn disconnected_queries_multiply_components() {
        // Two disjoint edges into K3: 6 * 6 = 36 homomorphisms; the
        // tree decomposition has two components joined arbitrarily, so the
        // empty-separator group-sum path is exercised.
        let (two_edges, _) =
            cq_structures::disjoint_union(&[&families::path(2), &families::path(2)]).unwrap();
        let k3 = families::clique(3);
        let index = StructureIndex::new(&k3);
        let (_, td) = treewidth_of_structure(&two_edges);
        assert_eq!(
            count_hom_via_tree_decomposition_indexed(&two_edges, &index, &td).count,
            count_homomorphisms_bruteforce(&two_edges, &k3)
        );
        assert!(hom_via_tree_decomposition_indexed(&two_edges, &index, &td).exists);
    }
}
