//! The flat evaluation kernel: indexed, allocation-light inner loops for
//! every DP solver in the registry.
//!
//! The reference implementations (`crate::treedec`, `crate::pathdp`,
//! `crate::treedepth::count_with_forest`, the backtracking searches) are
//! correct but spend their time in `BTreeMap<Element, Element>`
//! ([`cq_structures::PartialHom`]) allocations, full-universe
//! `|B|^{|bag|}` enumeration with leaf-only validity checks, and `O(n²)`
//! linear-scan frontier joins.  The kernel replaces all three:
//!
//! * **[`BagProgram`]** — each bag is compiled once into a fixed element
//!   order with flat `u32` assignment rows, per-variable candidate domains
//!   from a unary/incidence **prefilter** (an element of the query
//!   occurring at position `p` of a tuple of symbol `R` can only map to
//!   elements of `B` occurring at position `p` of `R^B` — read off the
//!   [`StructureIndex`] posting lists), and constraints checked
//!   **incrementally** the moment their last variable in the order is
//!   assigned, so dead branches prune at depth 1 instead of the leaf;
//! * **separator hash-joins** — the tree DP and the staircase sweep key
//!   child/frontier tables on the projection onto the per-edge separator
//!   (hoisted once per edge): decision becomes an O(1) hash-set existence
//!   lookup, counting a precomputed group-sum lookup;
//! * **index-driven candidate iteration** — when a depth's constraint has
//!   exactly one unbound variable, the enumerator walks the posting list
//!   of the cheapest bound position instead of scanning the whole
//!   prefilter domain (a classic index nested-loop join), and the fallback
//!   search ([`find_hom_indexed`]) is the whole-query [`BagProgram`] in
//!   fail-first order with O(1) tuple membership.
//!
//! **Compile/run split.** Every kernel entry point factors into a
//! *program* — [`TreeDpProgram`], [`StairProgram`], [`ForestProgram`],
//! [`SearchProgram`] — compiled once per (query, index) pair, and a cheap
//! `run` that executes it against the same index.  The free `*_indexed`
//! functions remain as compile-then-run one-liners; callers that evaluate
//! the same prepared query repeatedly against a cached database (the
//! engine's warm path) hold on to the compiled program instead and skip
//! recompilation entirely.  [`program_compilation_count`] meters
//! compilations so tests and benches can assert the warm path stays warm.
//!
//! No `PartialHom` or `BTreeMap` is constructed in any per-assignment
//! inner loop; the only per-row allocations are the surviving rows and
//! join keys themselves.  The reference implementations remain exported —
//! they are the oracle the differential tests pit the kernel against.

use cq_decomp::{EliminationForest, PathDecomposition, TreeDecomposition};
use cq_structures::SymbolId;
use cq_structures::{Element, Structure, StructureIndex};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::pathdp::PathDpReport;

/// Process-wide count of query-side kernel compilations (one per
/// [`QueryDomains::compile`], which every compiled program performs
/// exactly once).  Lets tests and benches assert that cached-program
/// paths do not silently recompile per call.
static PROGRAM_COMPILATIONS: AtomicU64 = AtomicU64::new(0);

/// The number of kernel program compilations performed by this process so
/// far.  Monotone; differences across a code region count the
/// compilations inside it.
pub fn program_compilation_count() -> u64 {
    PROGRAM_COMPILATIONS.load(Ordering::Relaxed)
}

/// Query-side compilation shared by every kernel entry point: the
/// query-symbol → index-symbol translation and the per-element candidate
/// domains produced by the unary/incidence prefilter.
///
/// The prefilter is sound for decision *and* counting: it removes a
/// candidate image only when some query tuple containing the element could
/// never be satisfied with it, which no full homomorphism violates.
#[derive(Debug, Clone)]
pub struct QueryDomains {
    /// For each query element, its sorted candidate images in the target.
    domains: Vec<Vec<u32>>,
    /// Query [`SymbolId`] → target [`SymbolId`] (by name).
    sym_map: Vec<Option<SymbolId>>,
    /// `false` when some non-empty query relation has no matching target
    /// relation — no homomorphism can exist at all.
    satisfiable: bool,
}

impl QueryDomains {
    /// Compile the prefilter for `a` against an indexed target.
    pub fn compile(a: &Structure, index: &StructureIndex) -> QueryDomains {
        PROGRAM_COMPILATIONS.fetch_add(1, Ordering::Relaxed);
        let sym_map: Vec<Option<SymbolId>> = a
            .vocabulary()
            .ids()
            .map(|id| {
                index
                    .vocabulary()
                    .id_of(a.vocabulary().name(id))
                    .filter(|&t| index.vocabulary().arity(t) == a.vocabulary().arity(id))
            })
            .collect();
        let mut satisfiable = true;
        for id in a.vocabulary().ids() {
            if sym_map[id.index()].is_none() && !a.relation(id).is_empty() {
                satisfiable = false;
            }
        }
        if !satisfiable {
            return QueryDomains {
                domains: vec![Vec::new(); a.universe_size()],
                sym_map,
                satisfiable,
            };
        }
        // Start from the full universe and intersect, for every occurrence
        // of an element at (symbol, position), the target's position domain.
        let full: Vec<u32> = (0..index.universe_size() as u32).collect();
        let mut domains: Vec<Option<Vec<u32>>> = vec![None; a.universe_size()];
        for (sym, t) in a.all_tuples() {
            let target = sym_map[sym.index()].expect("checked non-empty relations above");
            for (pos, &elem) in t.iter().enumerate() {
                let allowed = index.elements_at(target, pos);
                let current = domains[elem as usize].get_or_insert_with(|| full.clone());
                intersect_sorted(current, allowed);
            }
        }
        QueryDomains {
            domains: domains
                .into_iter()
                .map(|d| d.unwrap_or_else(|| full.clone()))
                .collect(),
            sym_map,
            satisfiable,
        }
    }

    /// Whether every non-empty query relation has a target counterpart.
    pub fn satisfiable(&self) -> bool {
        self.satisfiable
    }

    /// The candidate images of one query element.
    pub fn domain(&self, element: Element) -> &[u32] {
        &self.domains[element]
    }
}

/// In-place intersection of a sorted vector with a sorted slice.
fn intersect_sorted(current: &mut Vec<u32>, allowed: &[u32]) {
    let mut write = 0;
    let mut j = 0;
    for i in 0..current.len() {
        let v = current[i];
        while j < allowed.len() && allowed[j] < v {
            j += 1;
        }
        if j < allowed.len() && allowed[j] == v {
            current[write] = v;
            write += 1;
        }
    }
    current.truncate(write);
}

/// One compiled constraint: a query tuple translated to the target symbol,
/// its argument positions rewritten to depths in the bag's element order.
#[derive(Debug, Clone)]
struct Constraint {
    sym: SymbolId,
    arg_depths: Vec<u32>,
}

/// An index nested-loop join driving the candidate iteration at one depth:
/// a constraint anchored there with exactly one unbound position.  Instead
/// of scanning the whole prefilter domain and testing membership, the
/// enumerator walks the posting list of the cheapest bound position and
/// reads candidate images off the matching tuples.
#[derive(Debug, Clone)]
struct Driver {
    sym: SymbolId,
    arg_depths: Vec<u32>,
    /// The one tuple position whose variable sits at this depth.
    unbound: usize,
    /// Tuple positions whose variables are already assigned (depth < d).
    bound: Vec<usize>,
}

/// A bag compiled against one indexed target: fixed element order, flat
/// `u32` candidate domains per depth, and the constraints of the query
/// lying entirely inside the bag, grouped by the depth at which their last
/// variable is assigned (see the module docs).
#[derive(Debug, Clone)]
pub struct BagProgram {
    /// The bag's query elements in assignment order.
    elems: Vec<Element>,
    /// Candidate images per depth (prefilter domains).
    domains: Vec<Vec<u32>>,
    /// `checks[d]`: constraints whose deepest variable sits at depth `d`.
    checks: Vec<Vec<Constraint>>,
    /// `drivers[d]`: an optional posting-list join narrowing the candidate
    /// iteration at depth `d` (the driven constraint stays in `checks[d]`,
    /// so the domain-scan fallback remains complete).
    drivers: Vec<Option<Driver>>,
    /// Largest constraint arity (scratch-buffer sizing).
    max_arity: usize,
}

impl BagProgram {
    /// Compile the tuples of `a` lying entirely inside `elems` (which must
    /// be duplicate-free) into an evaluation program over the given order.
    pub fn compile(a: &Structure, doms: &QueryDomains, elems: &[Element]) -> BagProgram {
        let mut depth_of: HashMap<Element, u32> = HashMap::with_capacity(elems.len());
        for (d, &e) in elems.iter().enumerate() {
            depth_of.insert(e, d as u32);
        }
        let mut checks: Vec<Vec<Constraint>> = vec![Vec::new(); elems.len()];
        let mut max_arity = 0;
        if doms.satisfiable {
            for (sym, t) in a.all_tuples() {
                let Some(arg_depths) = t
                    .iter()
                    .map(|&e| depth_of.get(&(e as usize)).copied())
                    .collect::<Option<Vec<u32>>>()
                else {
                    continue; // tuple not entirely inside the bag
                };
                let target = doms.sym_map[sym.index()].expect("satisfiable query");
                let last = arg_depths.iter().copied().max().unwrap_or(0) as usize;
                max_arity = max_arity.max(arg_depths.len());
                checks[last].push(Constraint {
                    sym: target,
                    arg_depths,
                });
            }
        }
        // Pick one driver per depth: a constraint anchored there whose
        // other positions are all bound earlier in the order.
        let drivers: Vec<Option<Driver>> = checks
            .iter()
            .enumerate()
            .map(|(d, at_depth)| {
                at_depth.iter().find_map(|c| {
                    let d = d as u32;
                    let anchored = c.arg_depths.iter().filter(|&&x| x == d).count();
                    if anchored != 1 || c.arg_depths.len() < 2 {
                        return None;
                    }
                    let unbound = c.arg_depths.iter().position(|&x| x == d).expect("counted");
                    let bound = (0..c.arg_depths.len()).filter(|&p| p != unbound).collect();
                    Some(Driver {
                        sym: c.sym,
                        arg_depths: c.arg_depths.clone(),
                        unbound,
                        bound,
                    })
                })
            })
            .collect();
        let domains = elems
            .iter()
            .map(|&e| {
                if doms.satisfiable {
                    doms.domains[e].clone()
                } else {
                    Vec::new()
                }
            })
            .collect();
        BagProgram {
            elems: elems.to_vec(),
            domains,
            checks,
            drivers,
            max_arity,
        }
    }

    /// The bag's element order.
    pub fn elems(&self) -> &[Element] {
        &self.elems
    }

    /// Check every constraint anchored at `depth` against the partial row.
    #[inline]
    fn checks_pass(
        &self,
        index: &StructureIndex,
        depth: usize,
        row: &[u32],
        args: &mut Vec<u32>,
    ) -> bool {
        for c in &self.checks[depth] {
            args.clear();
            args.extend(c.arg_depths.iter().map(|&d| row[d as usize]));
            if !index.contains(c.sym, args) {
                return false;
            }
        }
        true
    }
}

/// Per-depth hash-join attached to a [`BagProgram`] enumeration: the key is
/// the row projected onto `key_depths`; the row survives only if the key is
/// present in the table.  `depth` is the deepest key variable, so the join
/// fires as early as the separator is fully assigned.
struct Join<T> {
    depth: usize,
    key_depths: Vec<u32>,
    table: HashMap<Vec<u32>, T>,
}

/// Try one candidate at `depth`: write it into the row, run the anchored
/// checks and joins, and recurse.  Returns `true` to stop the whole
/// enumeration (early exit requested by the emit callback downstream).
#[allow(clippy::too_many_arguments)]
fn try_candidate<T: JoinValue>(
    program: &BagProgram,
    index: &StructureIndex,
    joins_at: &[Vec<usize>],
    joins: &[Join<T>],
    depth: usize,
    candidate: u32,
    row: &mut [u32],
    args: &mut Vec<u32>,
    key: &mut Vec<u32>,
    acc: u64,
    scratch: &mut [Vec<u32>],
    emit: &mut impl FnMut(&[u32], u64) -> bool,
) -> bool {
    row[depth] = candidate;
    if !program.checks_pass(index, depth, row, args) {
        return false;
    }
    let mut next_acc = acc;
    for &j in &joins_at[depth] {
        let join = &joins[j];
        key.clear();
        key.extend(join.key_depths.iter().map(|&d| row[d as usize]));
        match join.table.get(key.as_slice()) {
            Some(v) => next_acc = v.fold(next_acc),
            None => return false,
        }
    }
    enumerate(
        program,
        index,
        joins_at,
        joins,
        depth + 1,
        row,
        args,
        key,
        next_acc,
        scratch,
        emit,
    )
}

/// Recursive enumerator over a [`BagProgram`] with optional joins.  `acc`
/// accumulates the product of counting-join factors along the path; the
/// emit callback returns `true` to stop the whole enumeration (early exit
/// for decision).  `scratch` holds one reusable candidate buffer per depth
/// for the driver (posting-list) iteration.
#[allow(clippy::too_many_arguments)]
fn enumerate<T: JoinValue>(
    program: &BagProgram,
    index: &StructureIndex,
    joins_at: &[Vec<usize>],
    joins: &[Join<T>],
    depth: usize,
    row: &mut [u32],
    args: &mut Vec<u32>,
    key: &mut Vec<u32>,
    acc: u64,
    scratch: &mut [Vec<u32>],
    emit: &mut impl FnMut(&[u32], u64) -> bool,
) -> bool {
    if depth == program.elems.len() {
        return emit(row, acc);
    }
    // Constraint-driven candidate iteration: when a constraint anchored
    // here has exactly one unbound position, the matching tuples of its
    // cheapest bound position list every viable candidate — walk them
    // instead of the whole domain whenever the posting list is shorter.
    if let Some(drv) = &program.drivers[depth] {
        let mut best_pos = drv.bound[0];
        let mut best = usize::MAX;
        for &q in &drv.bound {
            let v = row[drv.arg_depths[q] as usize];
            let c = index.occurrence_count(drv.sym, q, v);
            if c < best {
                best = c;
                best_pos = q;
            }
        }
        if best < program.domains[depth].len() {
            let mut cands = std::mem::take(&mut scratch[depth]);
            cands.clear();
            let pivot = row[drv.arg_depths[best_pos] as usize];
            'tuples: for t in index.tuples_with(drv.sym, best_pos, pivot) {
                for &q in &drv.bound {
                    if t[q] != row[drv.arg_depths[q] as usize] {
                        continue 'tuples;
                    }
                }
                cands.push(t[drv.unbound]);
            }
            cands.sort_unstable();
            cands.dedup();
            let dom = &program.domains[depth];
            for i in 0..cands.len() {
                let candidate = cands[i];
                if dom.binary_search(&candidate).is_err() {
                    continue; // prefilter pruned this image
                }
                if try_candidate(
                    program, index, joins_at, joins, depth, candidate, row, args, key, acc,
                    scratch, emit,
                ) {
                    scratch[depth] = cands;
                    return true;
                }
            }
            scratch[depth] = cands;
            return false;
        }
    }
    for &candidate in &program.domains[depth] {
        if try_candidate(
            program, index, joins_at, joins, depth, candidate, row, args, key, acc, scratch, emit,
        ) {
            return true;
        }
    }
    false
}

/// The value type a join table carries: unit for decision (existence), a
/// group-sum for counting.
trait JoinValue {
    fn fold(&self, acc: u64) -> u64;
}

impl JoinValue for () {
    fn fold(&self, acc: u64) -> u64 {
        acc
    }
}

impl JoinValue for u64 {
    fn fold(&self, acc: u64) -> u64 {
        acc.saturating_mul(*self)
    }
}

/// Run a program with joins, emitting every surviving row.
fn run_program<T: JoinValue>(
    program: &BagProgram,
    index: &StructureIndex,
    joins: Vec<Join<T>>,
    emit: &mut impl FnMut(&[u32], u64) -> bool,
    initial_acc: u64,
) {
    let mut joins_at: Vec<Vec<usize>> = vec![Vec::new(); program.elems.len().max(1)];
    for (j, join) in joins.iter().enumerate() {
        joins_at[join.depth].push(j);
    }
    let mut row = vec![0u32; program.elems.len()];
    let mut args = Vec::with_capacity(program.max_arity);
    let mut key = Vec::new();
    let mut scratch = vec![Vec::new(); program.elems.len()];
    if program.elems.is_empty() {
        // An empty bag has exactly the empty row; empty-key joins were
        // folded into `initial_acc` by the caller.
        emit(&row, initial_acc);
        return;
    }
    enumerate(
        program,
        index,
        &joins_at,
        &joins,
        0,
        &mut row,
        &mut args,
        &mut key,
        initial_acc,
        &mut scratch,
        emit,
    );
}

/// Root the decomposition tree at bag 0: parents (`usize::MAX` for the
/// root) plus a children-before-parents order.
fn root_tree(td: &TreeDecomposition) -> (Vec<usize>, Vec<usize>) {
    let n = td.tree.vertex_count();
    let mut parent = vec![usize::MAX; n];
    let mut visited = vec![false; n];
    let mut stack = vec![(0usize, usize::MAX)];
    let mut pre = Vec::with_capacity(n);
    while let Some((v, p)) = stack.pop() {
        if visited[v] {
            continue;
        }
        visited[v] = true;
        parent[v] = p;
        pre.push(v);
        for w in td.tree.neighbors(v) {
            if !visited[w] {
                stack.push((w, v));
            }
        }
    }
    pre.reverse();
    (parent, pre)
}

/// The viable-row table of one processed bag: the surviving rows (flat,
/// `stride` elements each), each with its subtree extension count
/// (decision stores 1).
struct BagTable {
    stride: usize,
    rows: Vec<u32>,
    counts: Vec<u64>,
}

impl BagTable {
    fn len(&self) -> usize {
        self.counts.len()
    }

    fn row(&self, i: usize) -> &[u32] {
        &self.rows[i * self.stride..(i + 1) * self.stride]
    }

    /// Group the rows by their projection onto `positions`, summing counts
    /// — the precomputed group-sum side of the separator hash-join.
    fn group_sums(&self, positions: &[u32]) -> HashMap<Vec<u32>, u64> {
        let mut table: HashMap<Vec<u32>, u64> = HashMap::with_capacity(self.len());
        for i in 0..self.len() {
            let row = self.row(i);
            let key: Vec<u32> = positions.iter().map(|&p| row[p as usize]).collect();
            let slot = table.entry(key).or_insert(0);
            *slot = slot.saturating_add(self.counts[i]);
        }
        table
    }
}

/// Metering of one kernel tree-DP run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TreeDpRun {
    /// Whether a homomorphism exists.
    pub exists: bool,
    /// The number of homomorphisms (only meaningful for the counting entry
    /// point; decision runs leave it 0 on failure / unspecified otherwise).
    pub count: u64,
    /// The largest viable-row table stored for any bag.
    pub peak_table: usize,
}

/// One bag of a compiled tree DP, with the separator joins toward its
/// children hoisted at compile time.
struct TreeBag {
    /// The bag's slot in the decomposition (table index).
    id: usize,
    is_root: bool,
    program: BagProgram,
    edges: Vec<TreeEdge>,
}

/// A compiled parent→child edge of the tree DP: the separator's positions
/// on both sides, resolved once at compile time.
struct TreeEdge {
    /// Child bag slot.
    child: usize,
    /// Separator positions in the child's row order (group-sum key).
    child_positions: Vec<u32>,
    /// Separator depths in the parent's order; empty ⇒ independent
    /// component (constant join factor).
    key_depths: Vec<u32>,
    /// Deepest key variable (join firing depth).
    depth: usize,
}

/// The kernel tree DP compiled against one `(query, index)` pair: rooted
/// bag order, per-bag [`BagProgram`]s, and per-edge separator positions.
/// Compile once, [`TreeDpProgram::decide`]/[`TreeDpProgram::count`] many
/// times against the same index.
pub struct TreeDpProgram {
    index_id: u64,
    satisfiable: bool,
    n_bags: usize,
    root: usize,
    /// Children-before-parents.
    bags: Vec<TreeBag>,
}

impl TreeDpProgram {
    /// Compile the tree DP for `a` over a valid tree decomposition of its
    /// Gaifman graph against the indexed target.
    pub fn compile(a: &Structure, index: &StructureIndex, td: &TreeDecomposition) -> TreeDpProgram {
        debug_assert!(td.is_valid_for(&cq_graphs::gaifman_graph(a)));
        let doms = QueryDomains::compile(a, index);
        let (parent, post) = root_tree(td);
        let elems_of: Vec<Vec<Element>> = td
            .bags
            .iter()
            .map(|b| b.iter().copied().collect())
            .collect();
        let mut bags = Vec::with_capacity(post.len());
        for &t in &post {
            let program = BagProgram::compile(a, &doms, &elems_of[t]);
            let mut edges = Vec::new();
            for c in td.tree.neighbors(t).filter(|&c| parent[c] == t) {
                let separator: Vec<Element> =
                    td.bags[t].intersection(&td.bags[c]).copied().collect();
                let child_positions: Vec<u32> = separator
                    .iter()
                    .map(|e| elems_of[c].iter().position(|x| x == e).expect("sep ⊆ bag") as u32)
                    .collect();
                let key_depths: Vec<u32> = separator
                    .iter()
                    .map(|e| elems_of[t].iter().position(|x| x == e).expect("sep ⊆ bag") as u32)
                    .collect();
                let depth = key_depths.iter().copied().max().unwrap_or(0) as usize;
                edges.push(TreeEdge {
                    child: c,
                    child_positions,
                    key_depths,
                    depth,
                });
            }
            bags.push(TreeBag {
                id: t,
                is_root: parent[t] == usize::MAX,
                program,
                edges,
            });
        }
        TreeDpProgram {
            index_id: index.id(),
            satisfiable: doms.satisfiable,
            n_bags: td.bags.len(),
            root: *post.last().expect("decompositions have at least one bag"),
            bags,
        }
    }

    /// The identity of the index this program was compiled against.
    pub fn index_id(&self) -> u64 {
        self.index_id
    }

    /// Decide `HOM(A, B)` (existence joins, first-row early exit at the
    /// root).
    pub fn decide(&self, index: &StructureIndex) -> TreeDpRun {
        self.run(index, false)
    }

    /// Count homomorphisms (group-sum separator joins).
    pub fn count(&self, index: &StructureIndex) -> TreeDpRun {
        self.run(index, true)
    }

    /// Shared bottom-up pass: each parent-child edge joined by a hash
    /// table keyed on the projection onto the hoisted separator.
    fn run(&self, index: &StructureIndex, counting: bool) -> TreeDpRun {
        debug_assert_eq!(index.id(), self.index_id, "program run on a foreign index");
        let mut run = TreeDpRun::default();
        if !self.satisfiable {
            return run;
        }
        let mut tables: Vec<Option<BagTable>> = (0..self.n_bags).map(|_| None).collect();
        for bag in &self.bags {
            let mut joins: Vec<Join<u64>> = Vec::with_capacity(bag.edges.len());
            let mut initial_acc = 1u64;
            let mut dead = false;
            for edge in &bag.edges {
                let child = tables[edge.child].take().expect("children before parents");
                let table = child.group_sums(&edge.child_positions);
                if edge.key_depths.is_empty() {
                    // Independent component: a constant factor for every row.
                    match table.get([].as_slice()) {
                        Some(&sum) if sum > 0 => {
                            initial_acc = initial_acc.saturating_mul(if counting { sum } else { 1 })
                        }
                        _ => dead = true,
                    }
                    continue;
                }
                joins.push(Join {
                    depth: edge.depth,
                    key_depths: edge.key_depths.clone(),
                    table,
                });
            }
            let mut table = BagTable {
                stride: bag.program.elems.len(),
                rows: Vec::new(),
                counts: Vec::new(),
            };
            if !dead {
                let early_exit = !counting && bag.is_root;
                run_program(
                    &bag.program,
                    index,
                    joins,
                    &mut |row, acc| {
                        if acc > 0 {
                            table.rows.extend_from_slice(row);
                            table.counts.push(if counting { acc } else { 1 });
                        }
                        early_exit && acc > 0
                    },
                    initial_acc,
                );
            }
            run.peak_table = run.peak_table.max(table.len());
            if table.len() == 0 {
                return run; // some bag admits nothing: no homomorphism
            }
            tables[bag.id] = Some(table);
        }
        let root_table = tables[self.root].as_ref().expect("root computed");
        run.exists = root_table.len() > 0;
        if counting {
            run.count = root_table
                .counts
                .iter()
                .fold(0u64, |acc, &c| acc.saturating_add(c));
            run.exists = run.count > 0;
        }
        run
    }
}

/// Decide `HOM(A, B)` by the kernel tree DP over a valid tree
/// decomposition of `A`'s Gaifman graph (see the module docs; the
/// reference implementation is [`crate::treedec::hom_via_tree_decomposition`]).
pub fn hom_via_tree_decomposition_indexed(
    a: &Structure,
    index: &StructureIndex,
    td: &TreeDecomposition,
) -> TreeDpRun {
    TreeDpProgram::compile(a, index, td).decide(index)
}

/// Count homomorphisms from `a` into the indexed target by the kernel tree
/// DP (group-sum separator joins; reference:
/// [`crate::treedec::count_hom_via_tree_decomposition`]).
pub fn count_hom_via_tree_decomposition_indexed(
    a: &Structure,
    index: &StructureIndex,
    td: &TreeDecomposition,
) -> TreeDpRun {
    TreeDpProgram::compile(a, index, td).count(index)
}

/// One step of a compiled staircase sweep.
enum StairStep {
    /// Project the frontier onto the surviving positions and deduplicate.
    Forget {
        /// Positions (in the pre-step order) of the surviving elements.
        positions: Vec<usize>,
    },
    /// Extend every frontier row through a program whose first
    /// `prefix_len` depths are pinned to the row.
    Introduce {
        program: BagProgram,
        prefix_len: usize,
    },
}

/// The kernel staircase sweep compiled against one `(query, index)` pair:
/// the first-bag program plus the forget/introduce step sequence with all
/// element-order bookkeeping resolved at compile time.
pub struct StairProgram {
    index_id: u64,
    satisfiable: bool,
    bags: usize,
    width: usize,
    init: BagProgram,
    steps: Vec<StairStep>,
}

impl StairProgram {
    /// Compile the sweep for `a` over a staircase path decomposition
    /// against the indexed target.
    pub fn compile(a: &Structure, index: &StructureIndex, stair: &PathDecomposition) -> Self {
        debug_assert!(stair.is_staircase());
        let doms = QueryDomains::compile(a, index);
        let mut order: Vec<Element> = match stair.bags.first() {
            Some(first) => first.iter().copied().collect(),
            None => Vec::new(),
        };
        let init = BagProgram::compile(a, &doms, &order);
        let mut steps = Vec::new();
        if doms.satisfiable {
            for window in stair.bags.windows(2) {
                let (prev, next) = (&window[0], &window[1]);
                if next.is_subset(prev) {
                    let keep: Vec<Element> = next.iter().copied().collect();
                    let positions: Vec<usize> = keep
                        .iter()
                        .map(|e| order.iter().position(|x| x == e).expect("next ⊆ prev"))
                        .collect();
                    order = keep;
                    steps.push(StairStep::Forget { positions });
                } else {
                    let new_elems: Vec<Element> = next.difference(prev).copied().collect();
                    let mut next_order = order.clone();
                    next_order.extend(new_elems.iter().copied());
                    let program = BagProgram::compile(a, &doms, &next_order);
                    steps.push(StairStep::Introduce {
                        program,
                        prefix_len: order.len(),
                    });
                    order = next_order;
                }
            }
        }
        StairProgram {
            index_id: index.id(),
            satisfiable: doms.satisfiable,
            bags: stair.bags.len(),
            width: stair.width(),
            init,
            steps,
        }
    }

    /// The identity of the index this program was compiled against.
    pub fn index_id(&self) -> u64 {
        self.index_id
    }

    /// Sweep the staircase: flat frontier rows, forget steps deduplicated
    /// through a hash set, introduce steps pinned-prefix enumerations.
    pub fn run(&self, index: &StructureIndex) -> PathDpReport {
        debug_assert_eq!(index.id(), self.index_id, "program run on a foreign index");
        let mut report = PathDpReport {
            exists: false,
            peak_frontier: 0,
            bags: self.bags,
            width: self.width,
        };
        if !self.satisfiable {
            return report;
        }
        // The frontier: rows of `stride` elements each.
        let mut stride = self.init.elems.len();
        let mut frontier: Vec<u32> = Vec::new();
        let mut frontier_len = 0usize;
        run_program(
            &self.init,
            index,
            Vec::<Join<()>>::new(),
            &mut |row, _| {
                frontier.extend_from_slice(row);
                frontier_len += 1;
                false
            },
            1,
        );
        report.peak_frontier = report.peak_frontier.max(frontier_len);
        if frontier_len == 0 {
            return report;
        }

        for step in &self.steps {
            match step {
                StairStep::Forget { positions } => {
                    let mut seen: HashSet<Vec<u32>> = HashSet::with_capacity(frontier_len);
                    let mut new_frontier: Vec<u32> = Vec::new();
                    let mut new_len = 0usize;
                    for i in 0..frontier_len {
                        let row = &frontier[i * stride..(i + 1) * stride];
                        let projected: Vec<u32> = positions.iter().map(|&p| row[p]).collect();
                        if seen.insert(projected.clone()) {
                            new_frontier.extend_from_slice(&projected);
                            new_len += 1;
                        }
                    }
                    stride = positions.len();
                    frontier = new_frontier;
                    frontier_len = new_len;
                }
                StairStep::Introduce {
                    program,
                    prefix_len,
                } => {
                    // Constraints fully inside the old bag were checked
                    // when it was built; only checks anchored at the new
                    // depths run.
                    let prefix_len = *prefix_len;
                    let new_stride = program.elems.len();
                    let mut new_frontier: Vec<u32> = Vec::new();
                    let mut new_len = 0usize;
                    let mut row = vec![0u32; new_stride];
                    let mut args = Vec::with_capacity(program.max_arity);
                    let mut key = Vec::new();
                    let mut scratch = vec![Vec::new(); new_stride];
                    let joins_at: Vec<Vec<usize>> = vec![Vec::new(); new_stride.max(1)];
                    for i in 0..frontier_len {
                        row[..prefix_len].copy_from_slice(&frontier[i * stride..(i + 1) * stride]);
                        enumerate::<()>(
                            program,
                            index,
                            &joins_at,
                            &[],
                            prefix_len,
                            &mut row,
                            &mut args,
                            &mut key,
                            1,
                            &mut scratch,
                            &mut |full, _| {
                                new_frontier.extend_from_slice(full);
                                new_len += 1;
                                false
                            },
                        );
                    }
                    stride = new_stride;
                    frontier = new_frontier;
                    frontier_len = new_len;
                }
            }
            report.peak_frontier = report.peak_frontier.max(frontier_len);
            if frontier_len == 0 {
                return report;
            }
        }
        report.exists = frontier_len > 0;
        report
    }
}

/// Decide `HOM(A, B)` by sweeping a staircase path decomposition with flat
/// frontier rows (reference: [`crate::pathdp::hom_via_staircase`]).
///
/// Forget steps project the frontier onto the surviving positions and
/// deduplicate through a hash set (the separator in staircase form is the
/// smaller bag itself); introduce steps extend each row through a
/// [`BagProgram`] whose first depths are pinned to the row.
pub fn hom_via_staircase_indexed(
    a: &Structure,
    index: &StructureIndex,
    stair: &PathDecomposition,
) -> PathDpReport {
    StairProgram::compile(a, index, stair).run(index)
}

/// The forest topology and per-node constraints of a compiled forest
/// evaluation: for each node, the tuples of the query whose deepest
/// element in the forest it is (all other elements are ancestors, hence
/// assigned when the node is visited).  Tuple entries are query elements.
struct ForestChecks {
    children: Vec<Vec<usize>>,
    roots: Vec<usize>,
    checks: Vec<Vec<(SymbolId, Vec<u32>)>>,
    max_arity: usize,
}

impl ForestChecks {
    fn compile(a: &Structure, doms: &QueryDomains, forest: &EliminationForest) -> ForestChecks {
        let depths = forest.depths();
        let mut checks: Vec<Vec<(SymbolId, Vec<u32>)>> = vec![Vec::new(); a.universe_size()];
        let mut max_arity = 0;
        if doms.satisfiable {
            for (sym, t) in a.all_tuples() {
                let target = doms.sym_map[sym.index()].expect("satisfiable query");
                let anchor = t
                    .iter()
                    .copied()
                    .max_by_key(|&e| depths[e as usize])
                    .expect("tuples are non-empty");
                max_arity = max_arity.max(t.len());
                checks[anchor as usize].push((target, t.to_vec()));
            }
        }
        ForestChecks {
            children: forest.children(),
            roots: forest.roots(),
            checks,
            max_arity,
        }
    }
}

/// Result of a kernel forest evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ForestRun {
    /// Whether a homomorphism exists.
    pub exists: bool,
    /// The number of homomorphisms (exact for the counting entry point;
    /// the decision entry point stops early and leaves it unspecified).
    pub count: u64,
    /// Candidate images tried across the whole run (a work figure).
    pub assignments: u64,
}

/// Shared recursion of the forest evaluations: count extensions of the
/// current ancestor assignment to the subtree at `v`; with `decide` set,
/// stop at the first witness (the count degenerates to 0/1).
#[allow(clippy::too_many_arguments)]
fn forest_subtree(
    program: &ForestChecks,
    doms: &QueryDomains,
    index: &StructureIndex,
    v: usize,
    assignment: &mut [u32],
    args: &mut Vec<u32>,
    stats: &mut u64,
    decide: bool,
) -> u64 {
    let mut total = 0u64;
    'candidates: for &image in doms.domain(v) {
        *stats += 1;
        assignment[v] = image;
        for (sym, t) in &program.checks[v] {
            args.clear();
            args.extend(t.iter().map(|&e| assignment[e as usize]));
            if !index.contains(*sym, args) {
                continue 'candidates;
            }
        }
        let mut product = 1u64;
        for &c in &program.children[v] {
            let c_count = forest_subtree(program, doms, index, c, assignment, args, stats, decide);
            product = product.saturating_mul(c_count);
            if product == 0 {
                break;
            }
        }
        total = total.saturating_add(product);
        if decide && total > 0 {
            return total;
        }
    }
    total
}

/// The kernel sum–product forest evaluation compiled against one
/// `(query, index)` pair: prefilter domains plus per-node anchored
/// constraints.  Compile once, [`ForestProgram::decide`] /
/// [`ForestProgram::count`] many times against the same index.
pub struct ForestProgram {
    index_id: u64,
    satisfiable: bool,
    doms: QueryDomains,
    checks: ForestChecks,
    universe: usize,
}

impl ForestProgram {
    /// Compile the forest evaluation for `a` over a valid elimination
    /// forest of its Gaifman graph against the indexed target.
    pub fn compile(
        a: &Structure,
        index: &StructureIndex,
        forest: &EliminationForest,
    ) -> ForestProgram {
        debug_assert!(forest.is_valid_for(&cq_graphs::gaifman_graph(a)));
        let doms = QueryDomains::compile(a, index);
        let checks = ForestChecks::compile(a, &doms, forest);
        ForestProgram {
            index_id: index.id(),
            satisfiable: doms.satisfiable,
            doms,
            checks,
            universe: a.universe_size(),
        }
    }

    /// The identity of the index this program was compiled against.
    pub fn index_id(&self) -> u64 {
        self.index_id
    }

    /// Count homomorphisms by the sum–product recursion.
    pub fn count(&self, index: &StructureIndex) -> ForestRun {
        self.run(index, false)
    }

    /// Decide `HOM(A, B)` with first-witness early exit.
    pub fn decide(&self, index: &StructureIndex) -> ForestRun {
        self.run(index, true)
    }

    fn run(&self, index: &StructureIndex, decide: bool) -> ForestRun {
        debug_assert_eq!(index.id(), self.index_id, "program run on a foreign index");
        let mut run = ForestRun::default();
        if !self.satisfiable {
            return run;
        }
        let mut assignment = vec![0u32; self.universe];
        let mut args = Vec::with_capacity(self.checks.max_arity);
        let mut result = 1u64;
        for &root in &self.checks.roots {
            let c = forest_subtree(
                &self.checks,
                &self.doms,
                index,
                root,
                &mut assignment,
                &mut args,
                &mut run.assignments,
                decide,
            );
            result = result.saturating_mul(c);
            if result == 0 {
                break;
            }
        }
        run.count = result;
        run.exists = result > 0;
        run
    }
}

/// Count homomorphisms by the kernel sum–product recursion over an
/// elimination forest of `a` (reference:
/// [`crate::treedepth::count_with_forest`]).
pub fn count_with_forest_indexed(
    a: &Structure,
    index: &StructureIndex,
    forest: &EliminationForest,
) -> ForestRun {
    ForestProgram::compile(a, index, forest).count(index)
}

/// Decide `HOM(A, B)` by the same recursion with first-witness early exit
/// — the kernel decision procedure licensed by bounded tree depth.
pub fn hom_via_forest_indexed(
    a: &Structure,
    index: &StructureIndex,
    forest: &EliminationForest,
) -> ForestRun {
    ForestProgram::compile(a, index, forest).decide(index)
}

/// Statistics of one kernel backtracking search.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelSearchStats {
    /// Candidate images tried.
    pub assignments: u64,
    /// Whether the prefilter alone refuted the instance (some domain
    /// empty before any search).
    pub decided_by_prefilter: bool,
}

/// The structure-agnostic kernel fallback compiled against one
/// `(query, index)` pair: the whole query as a single [`BagProgram`]
/// (index-driven candidate domains, incremental constraint checks) in the
/// chosen element order.
pub struct SearchProgram {
    index_id: u64,
    /// The prefilter refuted the instance at compile time (unsatisfiable
    /// vocabulary or some empty domain).
    refuted: bool,
    order: Vec<Element>,
    program: BagProgram,
    universe: usize,
}

impl SearchProgram {
    /// Compile the whole-query search.  With `fail_first` the element
    /// order is by increasing prefilter-domain size; otherwise element
    /// order.
    pub fn compile(a: &Structure, index: &StructureIndex, fail_first: bool) -> SearchProgram {
        let doms = QueryDomains::compile(a, index);
        let refuted = !doms.satisfiable || doms.domains.iter().any(|d| d.is_empty());
        let mut order: Vec<Element> = (0..a.universe_size()).collect();
        if fail_first {
            order.sort_by_key(|&e| doms.domains[e].len());
        }
        let program = BagProgram::compile(a, &doms, &order);
        SearchProgram {
            index_id: index.id(),
            refuted,
            order,
            program,
            universe: a.universe_size(),
        }
    }

    /// The identity of the index this program was compiled against.
    pub fn index_id(&self) -> u64 {
        self.index_id
    }

    /// Search for a first complete row; returns the witness as a total
    /// map plus search statistics.
    pub fn run(&self, index: &StructureIndex) -> (Option<Vec<Element>>, KernelSearchStats) {
        debug_assert_eq!(index.id(), self.index_id, "program run on a foreign index");
        let mut stats = KernelSearchStats::default();
        if self.refuted {
            stats.decided_by_prefilter = true;
            return (None, stats);
        }
        // A plain domain-scan search so `stats.assignments` counts every
        // candidate image tried (the driver path would skip some).
        fn search(
            program: &BagProgram,
            index: &StructureIndex,
            depth: usize,
            row: &mut [u32],
            args: &mut Vec<u32>,
            assignments: &mut u64,
        ) -> bool {
            if depth == program.elems.len() {
                return true;
            }
            for &candidate in &program.domains[depth] {
                *assignments += 1;
                row[depth] = candidate;
                if program.checks_pass(index, depth, row, args)
                    && search(program, index, depth + 1, row, args, assignments)
                {
                    return true;
                }
            }
            false
        }
        let mut row = vec![0u32; self.order.len()];
        let mut args = Vec::with_capacity(self.program.max_arity);
        let mut witness: Option<Vec<Element>> = None;
        if search(
            &self.program,
            index,
            0,
            &mut row,
            &mut args,
            &mut stats.assignments,
        ) {
            let mut total = vec![0 as Element; self.universe];
            for (d, &e) in self.order.iter().enumerate() {
                total[e] = row[d] as Element;
            }
            witness = Some(total);
        }
        (witness, stats)
    }
}

/// The structure-agnostic kernel fallback: the whole query compiled as a
/// single [`BagProgram`] searched for a first complete row.  (Reference:
/// the backtracking searches of [`crate::backtrack::BacktrackSolver`] and
/// [`cq_structures::find_homomorphism`].)
pub fn find_hom_indexed(
    a: &Structure,
    index: &StructureIndex,
    fail_first: bool,
) -> (Option<Vec<Element>>, KernelSearchStats) {
    SearchProgram::compile(a, index, fail_first).run(index)
}

/// Enumerate the valid assignments of one bag as flat rows over the sorted
/// bag order — the kernel replacement for the reference `bag_assignments`
/// helper (exposed for tests and ad-hoc callers).
pub fn bag_rows_indexed(
    a: &Structure,
    index: &StructureIndex,
    bag: &BTreeSet<Element>,
) -> (Vec<Element>, Vec<u32>) {
    let doms = QueryDomains::compile(a, index);
    let elems: Vec<Element> = bag.iter().copied().collect();
    let program = BagProgram::compile(a, &doms, &elems);
    let mut rows = Vec::new();
    if doms.satisfiable {
        run_program(
            &program,
            index,
            Vec::<Join<()>>::new(),
            &mut |row, _| {
                rows.extend_from_slice(row);
                false
            },
            1,
        );
    }
    (elems, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_decomp::pathwidth::pathwidth_of_structure;
    use cq_decomp::treedepth::treedepth_exact;
    use cq_decomp::treewidth::treewidth_of_structure;
    use cq_graphs::gaifman_graph;
    use cq_structures::{
        count_homomorphisms_bruteforce, families, homomorphism_exists, star_expansion,
    };

    fn pairs() -> Vec<(Structure, Structure)> {
        let queries = [
            families::path(3),
            families::path(5),
            families::cycle(3),
            families::cycle(4),
            families::cycle(5),
            families::star(3),
            families::directed_path(4),
            families::grid(2, 2),
            families::complete_bipartite(2, 2),
        ];
        let targets = [
            families::path(4),
            families::cycle(5),
            families::cycle(6),
            families::clique(3),
            families::clique(4),
            families::grid(2, 3),
            families::directed_cycle(5),
        ];
        queries
            .iter()
            .flat_map(|a| targets.iter().map(move |b| (a.clone(), b.clone())))
            .collect()
    }

    #[test]
    fn tree_dp_decision_and_count_match_bruteforce() {
        for (a, b) in pairs() {
            let (_, td) = treewidth_of_structure(&a);
            let index = StructureIndex::new(&b);
            let decide = hom_via_tree_decomposition_indexed(&a, &index, &td);
            assert_eq!(decide.exists, homomorphism_exists(&a, &b), "{a} -> {b}");
            let count = count_hom_via_tree_decomposition_indexed(&a, &index, &td);
            assert_eq!(
                count.count,
                count_homomorphisms_bruteforce(&a, &b),
                "{a} -> {b}"
            );
        }
    }

    #[test]
    fn staircase_sweep_matches_reference() {
        for (a, b) in pairs() {
            let (_, pd) = pathwidth_of_structure(&a);
            let stair = pd.normalize_staircase();
            let index = StructureIndex::new(&b);
            let kernel = hom_via_staircase_indexed(&a, &index, &stair);
            let reference = crate::pathdp::hom_via_staircase(&a, &b, &stair);
            assert_eq!(kernel.exists, reference.exists, "{a} -> {b}");
            assert_eq!(kernel.bags, reference.bags);
            assert_eq!(kernel.width, reference.width);
            // The kernel prefilter can only shrink the frontier.
            assert!(
                kernel.peak_frontier <= reference.peak_frontier,
                "kernel frontier grew on {a} -> {b}"
            );
        }
    }

    #[test]
    fn forest_count_and_decide_match_bruteforce() {
        for (a, b) in pairs() {
            let g = gaifman_graph(&a);
            let (_, forest) = treedepth_exact(&g);
            let index = StructureIndex::new(&b);
            let count = count_with_forest_indexed(&a, &index, &forest);
            assert_eq!(
                count.count,
                count_homomorphisms_bruteforce(&a, &b),
                "{a} -> {b}"
            );
            let decide = hom_via_forest_indexed(&a, &index, &forest);
            assert_eq!(decide.exists, homomorphism_exists(&a, &b), "{a} -> {b}");
        }
    }

    #[test]
    fn whole_query_search_matches_reference() {
        for (a, b) in pairs() {
            let index = StructureIndex::new(&b);
            for fail_first in [true, false] {
                let (witness, _) = find_hom_indexed(&a, &index, fail_first);
                assert_eq!(witness.is_some(), homomorphism_exists(&a, &b), "{a} -> {b}");
                if let Some(h) = witness {
                    assert!(cq_structures::is_homomorphism(&a, &b, &h), "{a} -> {b}");
                }
            }
        }
    }

    #[test]
    fn colored_instances_prefilter_to_singletons() {
        let q = star_expansion(&families::path(4));
        let index = StructureIndex::new(&q);
        let doms = QueryDomains::compile(&q, &index);
        assert!(doms.satisfiable());
        for e in 0..q.universe_size() {
            assert_eq!(doms.domain(e), &[e as u32], "colour pins element {e}");
        }
        let (witness, stats) = find_hom_indexed(&q, &index, true);
        assert!(witness.is_some());
        assert_eq!(stats.assignments, q.universe_size() as u64);
    }

    #[test]
    fn missing_target_symbol_is_unsatisfiable() {
        let q = star_expansion(&families::path(3));
        let plain = families::path(5);
        let index = StructureIndex::new(&plain);
        let doms = QueryDomains::compile(&q, &index);
        assert!(!doms.satisfiable());
        let (_, td) = treewidth_of_structure(&q);
        assert!(!hom_via_tree_decomposition_indexed(&q, &index, &td).exists);
        assert_eq!(
            count_hom_via_tree_decomposition_indexed(&q, &index, &td).count,
            0
        );
        let (_, pd) = pathwidth_of_structure(&q);
        assert!(!hom_via_staircase_indexed(&q, &index, &pd.normalize_staircase()).exists);
        let g = gaifman_graph(&q);
        let (_, forest) = treedepth_exact(&g);
        assert_eq!(count_with_forest_indexed(&q, &index, &forest).count, 0);
        let (witness, stats) = find_hom_indexed(&q, &index, true);
        assert!(witness.is_none());
        assert!(stats.decided_by_prefilter);
    }

    #[test]
    fn trivial_decomposition_reduces_to_prefiltered_bruteforce() {
        let a = families::cycle(4);
        let b = families::cycle(6);
        let td = TreeDecomposition::trivial(&gaifman_graph(&a));
        let index = StructureIndex::new(&b);
        assert!(hom_via_tree_decomposition_indexed(&a, &index, &td).exists);
        assert_eq!(
            count_hom_via_tree_decomposition_indexed(&a, &index, &td).count,
            count_homomorphisms_bruteforce(&a, &b)
        );
    }

    #[test]
    fn bag_rows_match_reference_bag_assignments() {
        let a = families::cycle(5);
        let b = families::clique(3);
        let index = StructureIndex::new(&b);
        let bag: BTreeSet<Element> = [0, 1, 2].into_iter().collect();
        let (elems, rows) = bag_rows_indexed(&a, &index, &bag);
        assert_eq!(elems, vec![0, 1, 2]);
        let stride = elems.len();
        let mut kernel_rows: Vec<Vec<u32>> = rows.chunks(stride).map(|r| r.to_vec()).collect();
        kernel_rows.sort();
        let reference = crate::treedec::reference_bag_assignments(&a, &b, &bag);
        let mut reference_rows: Vec<Vec<u32>> = reference
            .iter()
            .map(|h| elems.iter().map(|&e| h.get(e).unwrap() as u32).collect())
            .collect();
        reference_rows.sort();
        assert_eq!(kernel_rows, reference_rows);
    }

    #[test]
    fn disconnected_queries_multiply_components() {
        // Two disjoint edges into K3: 6 * 6 = 36 homomorphisms; the
        // tree decomposition has two components joined arbitrarily, so the
        // empty-separator group-sum path is exercised.
        let (two_edges, _) =
            cq_structures::disjoint_union(&[&families::path(2), &families::path(2)]).unwrap();
        let k3 = families::clique(3);
        let index = StructureIndex::new(&k3);
        let (_, td) = treewidth_of_structure(&two_edges);
        assert_eq!(
            count_hom_via_tree_decomposition_indexed(&two_edges, &index, &td).count,
            count_homomorphisms_bruteforce(&two_edges, &k3)
        );
        assert!(hom_via_tree_decomposition_indexed(&two_edges, &index, &td).exists);
    }

    #[test]
    fn compiled_programs_are_reusable_and_meter_compilations() {
        let a = families::cycle(4);
        let b = families::cycle(6);
        let index = StructureIndex::new(&b);
        let (_, td) = treewidth_of_structure(&a);
        let (_, pd) = pathwidth_of_structure(&a);
        let stair = pd.normalize_staircase();
        let g = gaifman_graph(&a);
        let (_, forest) = treedepth_exact(&g);

        let tree = TreeDpProgram::compile(&a, &index, &td);
        let stairp = StairProgram::compile(&a, &index, &stair);
        let forestp = ForestProgram::compile(&a, &index, &forest);
        let search = SearchProgram::compile(&a, &index, true);
        assert_eq!(tree.index_id(), index.id());
        assert_eq!(stairp.index_id(), index.id());
        assert_eq!(forestp.index_id(), index.id());
        assert_eq!(search.index_id(), index.id());

        // Running a compiled program does not recompile: repeat runs are
        // pure reads of the program and return identical results.  (The
        // counter is process-global and other tests compile concurrently,
        // so only monotone lower bounds are race-safe to assert here; the
        // exact no-recompile equality is asserted by the single-threaded
        // E18 bench.)
        let before = program_compilation_count();
        let expected = count_homomorphisms_bruteforce(&a, &b);
        for _ in 0..3 {
            assert!(tree.decide(&index).exists);
            assert_eq!(tree.count(&index).count, expected);
            assert!(stairp.run(&index).exists);
            assert_eq!(forestp.count(&index).count, expected);
            assert!(forestp.decide(&index).exists);
            assert!(search.run(&index).0.is_some());
        }

        // Compiling does meter.
        let _again = TreeDpProgram::compile(&a, &index, &td);
        assert!(program_compilation_count() > before);
    }

    #[test]
    fn driver_iteration_matches_bruteforce_on_selective_targets() {
        // Directed path into a large directed cycle: every element's
        // posting list has length 1 against full-size prefilter domains,
        // so the posting-list driver carries the whole enumeration.
        let a = families::directed_path(4);
        let b = families::directed_cycle(20);
        let index = StructureIndex::new(&b);
        let (_, td) = treewidth_of_structure(&a);
        assert_eq!(
            count_hom_via_tree_decomposition_indexed(&a, &index, &td).count,
            count_homomorphisms_bruteforce(&a, &b)
        );
        let (_, pd) = pathwidth_of_structure(&a);
        assert!(hom_via_staircase_indexed(&a, &index, &pd.normalize_staircase()).exists);
        // A star query: the centre is bound first, the leaves all drive
        // off the centre's posting list.
        let star = families::star(4);
        let k4 = families::clique(4);
        let k4_index = StructureIndex::new(&k4);
        let (_, td_star) = treewidth_of_structure(&star);
        assert_eq!(
            count_hom_via_tree_decomposition_indexed(&star, &k4_index, &td_star).count,
            count_homomorphisms_bruteforce(&star, &k4)
        );
    }
}
