//! The flat evaluation kernel: indexed, allocation-light inner loops for
//! every DP solver in the registry — one **semiring-generic**
//! sum-of-products.
//!
//! The reference implementations (`crate::treedec`, `crate::pathdp`,
//! `crate::treedepth::count_with_forest`, the backtracking searches) are
//! correct but spend their time in `BTreeMap<Element, Element>`
//! ([`cq_structures::PartialHom`]) allocations, full-universe
//! `|B|^{|bag|}` enumeration with leaf-only validity checks, and `O(n²)`
//! linear-scan frontier joins.  The kernel replaces all three:
//!
//! * **[`BagProgram`]** — each bag is compiled once into a fixed element
//!   order with flat `u32` assignment rows, per-variable candidate domains
//!   from a unary/incidence **prefilter** (an element of the query
//!   occurring at position `p` of a tuple of symbol `R` can only map to
//!   elements of `B` occurring at position `p` of `R^B` — read off the
//!   [`StructureIndex`] posting lists), and constraints checked
//!   **incrementally** the moment their last variable in the order is
//!   assigned, so dead branches prune at depth 1 instead of the leaf;
//! * **separator hash-joins** — the tree DP and the staircase sweep key
//!   child/frontier tables on the projection onto the per-edge separator
//!   (hoisted once per edge) through a flat packed-key [`GroupTable`]:
//!   no per-row key allocation, one `u32` arena for every group key;
//! * **index-driven candidate iteration** — when a depth's constraint has
//!   exactly one unbound variable, the enumerator walks the posting list
//!   of the cheapest bound position instead of scanning the whole
//!   prefilter domain (a classic index nested-loop join), and the fallback
//!   search ([`find_hom_indexed`]) is the whole-query [`BagProgram`] in
//!   fail-first order with O(1) tuple membership.
//!
//! **One DP, many semirings.**  There is exactly one tree DP, one
//! staircase sweep, and one forest recursion in this module; each is
//! generic over a [`Semiring`] and aggregates the sum over homomorphisms
//! of the product of per-tuple factors.  Decision instantiates
//! [`BoolSemiring`] (the absorbing element `⊤` reproduces the first-witness
//! early exit), counting instantiates [`CheckedNatSemiring`] (overflow is a
//! typed [`Nat::Overflow`], never a clamped number), and the weighted
//! aggregates instantiate the tropical [`crate::semiring::MinCostSemiring`]
//! / [`crate::semiring::MaxWeightSemiring`] over a
//! [`TupleWeights`] side table.  Every tuple of the query contributes its
//! weight factor exactly once per homomorphism: within a bag each
//! constraint is anchored at one depth, and across bags exactly one bag
//! **owns** each tuple's weight (the other bags still *check* it, for
//! pruning) — the staircase and forest anchorings are unique by
//! construction, and the tree DP claims each tuple for the first bag (in
//! evaluation order) containing it.
//!
//! **Compile/run split.** Every kernel entry point factors into a
//! *program* — [`TreeDpProgram`], [`StairProgram`], [`ForestProgram`],
//! [`SearchProgram`] — compiled once per (query, index) pair, and a cheap
//! `run` that executes it against the same index.  Compiled programs are
//! semiring-agnostic: one program serves decide, count, and every
//! weighting.  The free `*_indexed` functions remain as compile-then-run
//! one-liners; callers that evaluate the same prepared query repeatedly
//! against a cached database (the engine's warm path) hold on to the
//! compiled program instead and skip recompilation entirely.
//! [`program_compilation_count`] meters compilations so tests and benches
//! can assert the warm path stays warm.
//!
//! **Free variables.** The same compiled machinery answers queries with
//! free variables: [`AnswerProgram`] runs the tree DP over the
//! free-adjoined decomposition
//! ([`TreeDecomposition::answer_decomposition`](cq_decomp::TreeDecomposition::answer_decomposition)),
//! grouping root rows by the free positions into a packed-key
//! [`GroupTable`] whose keys *are* the answers (the answer count is the
//! group count), and [`AnswerProgram::cursor`] enumerates those
//! assignments in ascending lexicographic order with bounded delay — a
//! pinned-prefix DFS whose every step is certified by one pinned decide,
//! with no materialisation of the answer set.  Like counting, answers are
//! not core-invariant, so answer programs compile against the original
//! query; the width price of adjoining is at most the number of free
//! elements.
//!
//! No `PartialHom` or `BTreeMap` is constructed in any per-assignment
//! inner loop; the only per-row allocations are the surviving rows
//! themselves.  The reference implementations remain exported — they are
//! the oracle the differential tests pit the kernel against.

use cq_decomp::{EliminationForest, PathDecomposition, TreeDecomposition};
use cq_structures::SymbolId;
use cq_structures::{AppliedDelta, Element, Structure, StructureIndex, TupleWeights};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::pathdp::PathDpReport;
use crate::semiring::{BoolSemiring, CheckedNatSemiring, Nat, Semiring};

/// Process-wide count of query-side kernel compilations (one per
/// [`QueryDomains::compile`], which every compiled program performs
/// exactly once).  Lets tests and benches assert that cached-program
/// paths do not silently recompile per call.
static PROGRAM_COMPILATIONS: AtomicU64 = AtomicU64::new(0);

/// The number of kernel program compilations performed by this process so
/// far.  Monotone; differences across a code region count the
/// compilations inside it.
pub fn program_compilation_count() -> u64 {
    PROGRAM_COMPILATIONS.load(Ordering::Relaxed)
}

/// Query-side compilation shared by every kernel entry point: the
/// query-symbol → index-symbol translation and the per-element candidate
/// domains produced by the unary/incidence prefilter.
///
/// The prefilter is sound for decision *and* counting: it removes a
/// candidate image only when some query tuple containing the element could
/// never be satisfied with it, which no full homomorphism violates.
#[derive(Debug, Clone)]
pub struct QueryDomains {
    /// For each query element, its sorted candidate images in the target.
    domains: Vec<Vec<u32>>,
    /// Query [`SymbolId`] → target [`SymbolId`] (by name).
    sym_map: Vec<Option<SymbolId>>,
    /// `false` when some non-empty query relation has no matching target
    /// relation — no homomorphism can exist at all.
    satisfiable: bool,
}

impl QueryDomains {
    /// Compile the prefilter for `a` against an indexed target.
    pub fn compile(a: &Structure, index: &StructureIndex) -> QueryDomains {
        PROGRAM_COMPILATIONS.fetch_add(1, Ordering::Relaxed);
        let sym_map: Vec<Option<SymbolId>> = a
            .vocabulary()
            .ids()
            .map(|id| {
                index
                    .vocabulary()
                    .id_of(a.vocabulary().name(id))
                    .filter(|&t| index.vocabulary().arity(t) == a.vocabulary().arity(id))
            })
            .collect();
        let mut satisfiable = true;
        for id in a.vocabulary().ids() {
            if sym_map[id.index()].is_none() && !a.relation(id).is_empty() {
                satisfiable = false;
            }
        }
        if !satisfiable {
            return QueryDomains {
                domains: vec![Vec::new(); a.universe_size()],
                sym_map,
                satisfiable,
            };
        }
        // Start from the full universe and intersect, for every occurrence
        // of an element at (symbol, position), the target's position domain.
        let full: Vec<u32> = (0..index.universe_size() as u32).collect();
        let mut domains: Vec<Option<Vec<u32>>> = vec![None; a.universe_size()];
        for (sym, t) in a.all_tuples() {
            let target = sym_map[sym.index()].expect("checked non-empty relations above");
            for (pos, &elem) in t.iter().enumerate() {
                let allowed = index.elements_at(target, pos);
                let current = domains[elem as usize].get_or_insert_with(|| full.clone());
                intersect_sorted(current, allowed);
            }
        }
        QueryDomains {
            domains: domains
                .into_iter()
                .map(|d| d.unwrap_or_else(|| full.clone()))
                .collect(),
            sym_map,
            satisfiable,
        }
    }

    /// Whether every non-empty query relation has a target counterpart.
    pub fn satisfiable(&self) -> bool {
        self.satisfiable
    }

    /// The candidate images of one query element.
    pub fn domain(&self, element: Element) -> &[u32] {
        &self.domains[element]
    }
}

/// In-place intersection of a sorted vector with a sorted slice.
fn intersect_sorted(current: &mut Vec<u32>, allowed: &[u32]) {
    let mut write = 0;
    let mut j = 0;
    for i in 0..current.len() {
        let v = current[i];
        while j < allowed.len() && allowed[j] < v {
            j += 1;
        }
        if j < allowed.len() && allowed[j] == v {
            current[write] = v;
            write += 1;
        }
    }
    current.truncate(write);
}

/// Deterministic FNV-1a hash of a flat key (the [`GroupTable`] hash).
#[inline]
fn fnv_key(key: &[u32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &e in key {
        for b in e.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// A flat packed-key accumulation map: group keys of a fixed `stride` live
/// back-to-back in one `u32` arena, values in a parallel vector, and an
/// open-addressed bucket array resolves slice keys to group ids without
/// ever allocating a per-row key.
///
/// This is the separator-table representation of the kernel: `group_sums`
/// builds one per tree edge / forget step (accumulating with the
/// semiring's ⊕), and the per-depth hash-joins look keys up by slice.
pub struct GroupTable<V> {
    stride: usize,
    keys: Vec<u32>,
    values: Vec<V>,
    /// Open addressing: `0` = empty, else group id + 1.  Length is always
    /// a power of two.
    buckets: Vec<u32>,
}

impl<V> GroupTable<V> {
    /// An empty table over keys of `stride` elements, sized for about
    /// `groups` distinct keys.
    pub fn with_capacity(stride: usize, groups: usize) -> GroupTable<V> {
        let cap = (groups.max(1) * 2).next_power_of_two();
        GroupTable {
            stride,
            keys: Vec::with_capacity(groups * stride),
            values: Vec::with_capacity(groups),
            buckets: vec![0; cap],
        }
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the table holds no groups.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    #[inline]
    fn key(&self, g: usize) -> &[u32] {
        &self.keys[g * self.stride..(g + 1) * self.stride]
    }

    /// Probe for `key`: the slot it hashes to (after linear probing) and
    /// the group id if present.
    #[inline]
    fn find(&self, key: &[u32]) -> (usize, Option<usize>) {
        let mask = self.buckets.len() - 1;
        let mut slot = (fnv_key(key) as usize) & mask;
        loop {
            match self.buckets[slot] {
                0 => return (slot, None),
                g => {
                    let g = (g - 1) as usize;
                    if self.key(g) == key {
                        return (slot, Some(g));
                    }
                }
            }
            slot = (slot + 1) & mask;
        }
    }

    /// The value stored under `key`, if any.
    #[inline]
    pub fn get(&self, key: &[u32]) -> Option<&V> {
        debug_assert_eq!(key.len(), self.stride);
        self.find(key).1.map(|g| &self.values[g])
    }

    /// Mutable access to the value stored under `key`, if any — the
    /// in-place patch path of the incremental evaluator.
    #[inline]
    pub fn get_mut(&mut self, key: &[u32]) -> Option<&mut V> {
        debug_assert_eq!(key.len(), self.stride);
        self.find(key).1.map(|g| &mut self.values[g])
    }

    /// Fold `value` into the group at `key`: combine with the existing
    /// value, or insert (copying the key into the arena) when absent.
    pub fn merge(&mut self, key: &[u32], value: V, combine: impl FnOnce(&mut V, V)) {
        debug_assert_eq!(key.len(), self.stride);
        if (self.values.len() + 1) * 4 >= self.buckets.len() * 3 {
            self.grow();
        }
        let (slot, found) = self.find(key);
        match found {
            Some(g) => combine(&mut self.values[g], value),
            None => {
                let g = self.values.len();
                debug_assert!(g < u32::MAX as usize - 1, "group ids are u32");
                self.keys.extend_from_slice(key);
                self.values.push(value);
                self.buckets[slot] = (g + 1) as u32;
            }
        }
    }

    fn grow(&mut self) {
        let cap = (self.buckets.len() * 2).max(4);
        self.buckets.clear();
        self.buckets.resize(cap, 0);
        let mask = cap - 1;
        for g in 0..self.values.len() {
            let mut slot = (fnv_key(self.key(g)) as usize) & mask;
            while self.buckets[slot] != 0 {
                slot = (slot + 1) & mask;
            }
            self.buckets[slot] = (g + 1) as u32;
        }
    }

    /// The groups in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&[u32], &V)> {
        (0..self.len()).map(move |g| (self.key(g), &self.values[g]))
    }

    /// Dismantle into the flat key arena and the parallel values (the
    /// frontier representation of the staircase sweep).
    fn into_flat(self) -> (Vec<u32>, Vec<V>) {
        (self.keys, self.values)
    }
}

/// One compiled constraint: a query tuple translated to the target symbol,
/// its argument positions rewritten to depths in the bag's element order.
/// `owns_weight` marks the one check across the whole evaluation that
/// emits this tuple's weight factor (weighted semirings only; every check
/// still prunes).
#[derive(Debug, Clone)]
struct Constraint {
    sym: SymbolId,
    arg_depths: Vec<u32>,
    owns_weight: bool,
}

/// An index nested-loop join driving the candidate iteration at one depth:
/// a constraint anchored there with exactly one unbound position.  Instead
/// of scanning the whole prefilter domain and testing membership, the
/// enumerator walks the posting list of the cheapest bound position and
/// reads candidate images off the matching tuples.
#[derive(Debug, Clone)]
struct Driver {
    sym: SymbolId,
    arg_depths: Vec<u32>,
    /// The one tuple position whose variable sits at this depth.
    unbound: usize,
    /// Tuple positions whose variables are already assigned (depth < d).
    bound: Vec<usize>,
}

/// A bag compiled against one indexed target: fixed element order, flat
/// `u32` candidate domains per depth, and the constraints of the query
/// lying entirely inside the bag, grouped by the depth at which their last
/// variable is assigned (see the module docs).
#[derive(Debug, Clone)]
pub struct BagProgram {
    /// The bag's query elements in assignment order.
    elems: Vec<Element>,
    /// Candidate images per depth (prefilter domains).
    domains: Vec<Vec<u32>>,
    /// `checks[d]`: constraints whose deepest variable sits at depth `d`.
    checks: Vec<Vec<Constraint>>,
    /// `drivers[d]`: an optional posting-list join narrowing the candidate
    /// iteration at depth `d` (the driven constraint stays in `checks[d]`,
    /// so the domain-scan fallback remains complete).
    drivers: Vec<Option<Driver>>,
    /// Largest constraint arity (scratch-buffer sizing).
    max_arity: usize,
}

impl BagProgram {
    /// Compile the tuples of `a` lying entirely inside `elems` (which must
    /// be duplicate-free) into an evaluation program over the given order.
    /// Every compiled check owns its tuple's weight — correct whenever this
    /// program is the only one checking those tuples (whole-query search,
    /// staircase steps, single bags).
    pub fn compile(a: &Structure, doms: &QueryDomains, elems: &[Element]) -> BagProgram {
        BagProgram::compile_claiming(a, doms, elems, |_| true)
    }

    /// [`BagProgram::compile`] with explicit weight ownership: `claim` is
    /// called once per in-bag tuple with the tuple's ordinal in
    /// `a.all_tuples()` order and returns whether **this** program owns the
    /// tuple's weight factor.  The tree DP shares tuples between bags and
    /// claims each for the first bag compiled that contains it.
    fn compile_claiming(
        a: &Structure,
        doms: &QueryDomains,
        elems: &[Element],
        mut claim: impl FnMut(usize) -> bool,
    ) -> BagProgram {
        // Dense depth lookup over the query universe (`u32::MAX` = element
        // outside the bag) — bags are compiled per index, so this runs on
        // the per-call hot path.
        let mut depth_of: Vec<u32> = vec![u32::MAX; a.universe_size()];
        for (d, &e) in elems.iter().enumerate() {
            depth_of[e] = d as u32;
        }
        let mut checks: Vec<Vec<Constraint>> = vec![Vec::new(); elems.len()];
        let mut max_arity = 0;
        if doms.satisfiable {
            for (ordinal, (sym, t)) in a.all_tuples().enumerate() {
                let Some(arg_depths) = t
                    .iter()
                    .map(|&e| {
                        let d = depth_of[e as usize];
                        (d != u32::MAX).then_some(d)
                    })
                    .collect::<Option<Vec<u32>>>()
                else {
                    continue; // tuple not entirely inside the bag
                };
                let target = doms.sym_map[sym.index()].expect("satisfiable query");
                let last = arg_depths.iter().copied().max().unwrap_or(0) as usize;
                max_arity = max_arity.max(arg_depths.len());
                checks[last].push(Constraint {
                    sym: target,
                    arg_depths,
                    owns_weight: claim(ordinal),
                });
            }
        }
        // Pick one driver per depth: a constraint anchored there whose
        // other positions are all bound earlier in the order.
        let drivers: Vec<Option<Driver>> = checks
            .iter()
            .enumerate()
            .map(|(d, at_depth)| {
                at_depth.iter().find_map(|c| {
                    let d = d as u32;
                    let anchored = c.arg_depths.iter().filter(|&&x| x == d).count();
                    if anchored != 1 || c.arg_depths.len() < 2 {
                        return None;
                    }
                    let unbound = c.arg_depths.iter().position(|&x| x == d).expect("counted");
                    let bound = (0..c.arg_depths.len()).filter(|&p| p != unbound).collect();
                    Some(Driver {
                        sym: c.sym,
                        arg_depths: c.arg_depths.clone(),
                        unbound,
                        bound,
                    })
                })
            })
            .collect();
        let domains = elems
            .iter()
            .map(|&e| {
                if doms.satisfiable {
                    doms.domains[e].clone()
                } else {
                    Vec::new()
                }
            })
            .collect();
        BagProgram {
            elems: elems.to_vec(),
            domains,
            checks,
            drivers,
            max_arity,
        }
    }

    /// The bag's element order.
    pub fn elems(&self) -> &[Element] {
        &self.elems
    }

    /// Check every constraint anchored at `depth` against the partial row
    /// (the Boolean fast path of the witness search).
    #[inline]
    fn checks_pass(
        &self,
        index: &StructureIndex,
        depth: usize,
        row: &[u32],
        args: &mut Vec<u32>,
    ) -> bool {
        for c in &self.checks[depth] {
            args.clear();
            args.extend(c.arg_depths.iter().map(|&d| row[d as usize]));
            if !index.contains(c.sym, args) {
                return false;
            }
        }
        true
    }

    /// Check every constraint anchored at `depth` and return the ⊗-factor
    /// it contributes (the product of owned tuple weights under a weighted
    /// semiring; `1` otherwise), or `None` when some check fails.
    #[inline]
    fn check_factor<S: Semiring>(
        &self,
        index: &StructureIndex,
        weights: Option<&TupleWeights>,
        depth: usize,
        row: &[u32],
        args: &mut Vec<u32>,
    ) -> Option<S::Value> {
        if !S::WEIGHTED {
            return self.checks_pass(index, depth, row, args).then(|| S::one());
        }
        let table = weights.expect("weighted semirings evaluate with a TupleWeights table");
        let mut factor = S::one();
        for c in &self.checks[depth] {
            args.clear();
            args.extend(c.arg_depths.iter().map(|&d| row[d as usize]));
            match index.row_of(c.sym, args) {
                None => return None,
                Some(r) => {
                    if c.owns_weight {
                        factor = S::mul(&factor, &S::weight(table.get(c.sym, r)));
                    }
                }
            }
        }
        Some(factor)
    }
}

/// Per-depth hash-join attached to a [`BagProgram`] enumeration: the key is
/// the row projected onto `key_depths`; the row survives only if the key is
/// present in the table, and its value multiplies into the accumulator.
/// `depth` is the deepest key variable, so the join fires as early as the
/// separator is fully assigned.  The table is borrowed, not owned, so the
/// incremental evaluator can join against group tables it retains across
/// calls.
struct Join<'a, V> {
    depth: usize,
    key_depths: Vec<u32>,
    table: &'a GroupTable<V>,
}

/// Try one candidate at `depth`: write it into the row, run the anchored
/// checks and joins, and recurse.  Returns `true` to stop the whole
/// enumeration (early exit requested by the emit callback downstream).
#[allow(clippy::too_many_arguments)]
fn try_candidate<S: Semiring>(
    program: &BagProgram,
    index: &StructureIndex,
    weights: Option<&TupleWeights>,
    joins_at: &[Vec<usize>],
    joins: &[Join<'_, S::Value>],
    depth: usize,
    candidate: u32,
    row: &mut [u32],
    args: &mut Vec<u32>,
    key: &mut Vec<u32>,
    acc: &S::Value,
    scratch: &mut [Vec<u32>],
    emit: &mut impl FnMut(&[u32], S::Value) -> bool,
) -> bool {
    row[depth] = candidate;
    let Some(factor) = program.check_factor::<S>(index, weights, depth, row, args) else {
        return false;
    };
    let mut next_acc = if S::WEIGHTED {
        S::mul(acc, &factor)
    } else {
        acc.clone()
    };
    for &j in &joins_at[depth] {
        let join = &joins[j];
        key.clear();
        key.extend(join.key_depths.iter().map(|&d| row[d as usize]));
        match join.table.get(key.as_slice()) {
            Some(v) => next_acc = S::mul(&next_acc, v),
            None => return false,
        }
    }
    enumerate::<S>(
        program,
        index,
        weights,
        joins_at,
        joins,
        depth + 1,
        row,
        args,
        key,
        &next_acc,
        scratch,
        emit,
    )
}

/// Recursive enumerator over a [`BagProgram`] with optional joins.  `acc`
/// accumulates the ⊗-product of check and join factors along the path; the
/// emit callback returns `true` to stop the whole enumeration (the
/// absorbing-element early exit).  `scratch` holds one reusable candidate
/// buffer per depth for the driver (posting-list) iteration.
#[allow(clippy::too_many_arguments)]
fn enumerate<S: Semiring>(
    program: &BagProgram,
    index: &StructureIndex,
    weights: Option<&TupleWeights>,
    joins_at: &[Vec<usize>],
    joins: &[Join<'_, S::Value>],
    depth: usize,
    row: &mut [u32],
    args: &mut Vec<u32>,
    key: &mut Vec<u32>,
    acc: &S::Value,
    scratch: &mut [Vec<u32>],
    emit: &mut impl FnMut(&[u32], S::Value) -> bool,
) -> bool {
    if depth == program.elems.len() {
        return emit(row, acc.clone());
    }
    // Constraint-driven candidate iteration: when a constraint anchored
    // here has exactly one unbound position, the matching tuples of its
    // cheapest bound position list every viable candidate — walk them
    // instead of the whole domain whenever the posting list is shorter.
    if let Some(drv) = &program.drivers[depth] {
        let mut best_pos = drv.bound[0];
        let mut best = usize::MAX;
        for &q in &drv.bound {
            let v = row[drv.arg_depths[q] as usize];
            let c = index.occurrence_count(drv.sym, q, v);
            if c < best {
                best = c;
                best_pos = q;
            }
        }
        if best < program.domains[depth].len() {
            let mut cands = std::mem::take(&mut scratch[depth]);
            cands.clear();
            let pivot = row[drv.arg_depths[best_pos] as usize];
            'tuples: for t in index.tuples_with(drv.sym, best_pos, pivot) {
                for &q in &drv.bound {
                    if t[q] != row[drv.arg_depths[q] as usize] {
                        continue 'tuples;
                    }
                }
                cands.push(t[drv.unbound]);
            }
            cands.sort_unstable();
            cands.dedup();
            let dom = &program.domains[depth];
            for i in 0..cands.len() {
                let candidate = cands[i];
                if dom.binary_search(&candidate).is_err() {
                    continue; // prefilter pruned this image
                }
                if try_candidate::<S>(
                    program, index, weights, joins_at, joins, depth, candidate, row, args, key,
                    acc, scratch, emit,
                ) {
                    scratch[depth] = cands;
                    return true;
                }
            }
            scratch[depth] = cands;
            return false;
        }
    }
    for &candidate in &program.domains[depth] {
        if try_candidate::<S>(
            program, index, weights, joins_at, joins, depth, candidate, row, args, key, acc,
            scratch, emit,
        ) {
            return true;
        }
    }
    false
}

/// Run a program with joins, emitting every surviving row with its
/// accumulated ⊗-value.
fn run_program<S: Semiring>(
    program: &BagProgram,
    index: &StructureIndex,
    weights: Option<&TupleWeights>,
    joins: &[Join<'_, S::Value>],
    emit: &mut impl FnMut(&[u32], S::Value) -> bool,
    initial_acc: S::Value,
) {
    let mut joins_at: Vec<Vec<usize>> = vec![Vec::new(); program.elems.len().max(1)];
    for (j, join) in joins.iter().enumerate() {
        joins_at[join.depth].push(j);
    }
    let mut row = vec![0u32; program.elems.len()];
    let mut args = Vec::with_capacity(program.max_arity);
    let mut key = Vec::new();
    let mut scratch = vec![Vec::new(); program.elems.len()];
    if program.elems.is_empty() {
        // An empty bag has exactly the empty row; empty-key joins were
        // folded into `initial_acc` by the caller.
        emit(&row, initial_acc);
        return;
    }
    enumerate::<S>(
        program,
        index,
        weights,
        &joins_at,
        joins,
        0,
        &mut row,
        &mut args,
        &mut key,
        &initial_acc,
        &mut scratch,
        emit,
    );
}

/// Root the decomposition tree at bag 0: parents (`usize::MAX` for the
/// root) plus a children-before-parents order.
fn root_tree(td: &TreeDecomposition) -> (Vec<usize>, Vec<usize>) {
    let n = td.tree.vertex_count();
    let mut parent = vec![usize::MAX; n];
    let mut visited = vec![false; n];
    let mut stack = vec![(0usize, usize::MAX)];
    let mut pre = Vec::with_capacity(n);
    while let Some((v, p)) = stack.pop() {
        if visited[v] {
            continue;
        }
        visited[v] = true;
        parent[v] = p;
        pre.push(v);
        for w in td.tree.neighbors(v) {
            if !visited[w] {
                stack.push((w, v));
            }
        }
    }
    pre.reverse();
    (parent, pre)
}

/// The viable-row table of one processed bag: the surviving rows (flat,
/// `stride` elements each), each with its subtree ⊗-value.
struct BagTable<V> {
    stride: usize,
    rows: Vec<u32>,
    values: Vec<V>,
}

impl<V: Clone> BagTable<V> {
    fn len(&self) -> usize {
        self.values.len()
    }

    fn row(&self, i: usize) -> &[u32] {
        &self.rows[i * self.stride..(i + 1) * self.stride]
    }

    /// Group the rows by their projection onto `positions`, ⊕-summing
    /// values into a flat packed-key [`GroupTable`] — the precomputed
    /// group-sum side of the separator hash-join.  No per-row key
    /// allocation: one reused scratch projection, keys interned in the
    /// table's arena.
    fn group_sums<S: Semiring<Value = V>>(&self, positions: &[u32]) -> GroupTable<V> {
        let mut table = GroupTable::with_capacity(positions.len(), self.len());
        let mut key: Vec<u32> = Vec::with_capacity(positions.len());
        for i in 0..self.len() {
            let row = self.row(i);
            key.clear();
            key.extend(positions.iter().map(|&p| row[p as usize]));
            table.merge(&key, self.values[i].clone(), |acc, v| {
                *acc = S::add(acc, &v)
            });
        }
        table
    }
}

/// Metering of one kernel tree-DP run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TreeDpRun {
    /// Whether a homomorphism exists.
    pub exists: bool,
    /// The number of homomorphisms ([`Nat::Overflow`] past `u64::MAX`;
    /// decision runs report 0/1 for the witness found).
    pub count: Nat,
    /// The largest viable-row table stored for any bag.
    pub peak_table: usize,
}

/// One bag of a compiled tree DP, with the separator joins toward its
/// children hoisted at compile time.
struct TreeBag {
    /// The bag's slot in the decomposition (table index).
    id: usize,
    is_root: bool,
    program: BagProgram,
    edges: Vec<TreeEdge>,
}

/// A compiled parent→child edge of the tree DP: the separator's positions
/// on both sides, resolved once at compile time.
struct TreeEdge {
    /// Child bag slot.
    child: usize,
    /// Separator positions in the child's row order (group-sum key).
    child_positions: Vec<u32>,
    /// Separator depths in the parent's order; empty ⇒ independent
    /// component (constant join factor).
    key_depths: Vec<u32>,
    /// Deepest key variable (join firing depth).
    depth: usize,
}

/// The kernel tree DP compiled against one `(query, index)` pair: rooted
/// bag order, per-bag [`BagProgram`]s, and per-edge separator positions.
/// Compile once, then [`TreeDpProgram::decide`] / [`TreeDpProgram::count`]
/// / [`TreeDpProgram::eval`] any number of times against the same index —
/// the program is semiring-agnostic.
pub struct TreeDpProgram {
    index_id: u64,
    satisfiable: bool,
    n_bags: usize,
    /// Children-before-parents.
    bags: Vec<TreeBag>,
}

impl TreeDpProgram {
    /// Compile the tree DP for `a` over a valid tree decomposition of its
    /// Gaifman graph against the indexed target.
    pub fn compile(a: &Structure, index: &StructureIndex, td: &TreeDecomposition) -> TreeDpProgram {
        debug_assert!(td.is_valid_for(&cq_graphs::gaifman_graph(a)));
        let doms = QueryDomains::compile(a, index);
        let (parent, post) = root_tree(td);
        let elems_of: Vec<Vec<Element>> = td
            .bags
            .iter()
            .map(|b| b.iter().copied().collect())
            .collect();
        let mut bags = Vec::with_capacity(post.len());
        // A query tuple may lie inside several bags; exactly one bag (the
        // first compiled, i.e. deepest in evaluation order) owns its weight
        // factor, the rest only check it.
        let mut claimed: Vec<bool> = vec![false; a.tuple_count()];
        for &t in &post {
            let program = BagProgram::compile_claiming(a, &doms, &elems_of[t], &mut |ordinal| {
                !std::mem::replace(&mut claimed[ordinal], true)
            });
            let mut edges = Vec::new();
            for c in td.tree.neighbors(t).filter(|&c| parent[c] == t) {
                let separator: Vec<Element> =
                    td.bags[t].intersection(&td.bags[c]).copied().collect();
                let child_positions: Vec<u32> = separator
                    .iter()
                    .map(|e| elems_of[c].iter().position(|x| x == e).expect("sep ⊆ bag") as u32)
                    .collect();
                let key_depths: Vec<u32> = separator
                    .iter()
                    .map(|e| elems_of[t].iter().position(|x| x == e).expect("sep ⊆ bag") as u32)
                    .collect();
                let depth = key_depths.iter().copied().max().unwrap_or(0) as usize;
                edges.push(TreeEdge {
                    child: c,
                    child_positions,
                    key_depths,
                    depth,
                });
            }
            bags.push(TreeBag {
                id: t,
                is_root: parent[t] == usize::MAX,
                program,
                edges,
            });
        }
        TreeDpProgram {
            index_id: index.id(),
            satisfiable: doms.satisfiable,
            n_bags: td.bags.len(),
            bags,
        }
    }

    /// The identity of the index this program was compiled against.
    pub fn index_id(&self) -> u64 {
        self.index_id
    }

    /// Decide `HOM(A, B)` — the [`BoolSemiring`] instantiation; the
    /// absorbing `⊤` gives the first-row early exit at the root.
    pub fn decide(&self, index: &StructureIndex) -> TreeDpRun {
        let (value, peak_table) = self.eval::<BoolSemiring>(index, None);
        TreeDpRun {
            exists: value,
            count: Nat::Finite(u64::from(value)),
            peak_table,
        }
    }

    /// Count homomorphisms — the [`CheckedNatSemiring`] instantiation
    /// (overflow is typed, never clamped).
    pub fn count(&self, index: &StructureIndex) -> TreeDpRun {
        let (value, peak_table) = self.eval::<CheckedNatSemiring>(index, None);
        TreeDpRun {
            exists: value.positive(),
            count: value,
            peak_table,
        }
    }

    /// The generic sum-of-products: ⊕ over homomorphisms of the ⊗ of
    /// per-tuple factors, computed bottom-up with per-edge separator
    /// group-sum joins.  `weights` is required exactly when
    /// `S::WEIGHTED`.  Returns the aggregate and the peak bag-table size.
    pub fn eval<S: Semiring>(
        &self,
        index: &StructureIndex,
        weights: Option<&TupleWeights>,
    ) -> (S::Value, usize) {
        debug_assert_eq!(index.id(), self.index_id, "program run on a foreign index");
        let mut peak = 0usize;
        if !self.satisfiable {
            return (S::zero(), peak);
        }
        let mut tables: Vec<Option<BagTable<S::Value>>> = (0..self.n_bags).map(|_| None).collect();
        for bag in &self.bags {
            let mut group_tables: Vec<GroupTable<S::Value>> = Vec::with_capacity(bag.edges.len());
            let mut join_specs: Vec<(usize, &[u32])> = Vec::with_capacity(bag.edges.len());
            let mut initial_acc = S::one();
            let mut dead = false;
            for edge in &bag.edges {
                let child = tables[edge.child].take().expect("children before parents");
                let table = child.group_sums::<S>(&edge.child_positions);
                if edge.key_depths.is_empty() {
                    // Independent component: a constant ⊗-factor for every
                    // row of this bag.
                    match table.get(&[]) {
                        Some(sum) if !S::is_zero(sum) => initial_acc = S::mul(&initial_acc, sum),
                        _ => dead = true,
                    }
                    continue;
                }
                join_specs.push((edge.depth, &edge.key_depths));
                group_tables.push(table);
            }
            let joins: Vec<Join<'_, S::Value>> = join_specs
                .into_iter()
                .zip(group_tables.iter())
                .map(|((depth, key_depths), table)| Join {
                    depth,
                    key_depths: key_depths.to_vec(),
                    table,
                })
                .collect();
            if bag.is_root {
                // The root's rows are only ever ⊕-folded — accumulate
                // directly, early-exiting once the total absorbs.
                let mut total = S::zero();
                let mut rows = 0usize;
                if !dead {
                    run_program::<S>(
                        &bag.program,
                        index,
                        weights,
                        &joins,
                        &mut |_, acc| {
                            if S::is_zero(&acc) {
                                return false;
                            }
                            rows += 1;
                            total = S::add(&total, &acc);
                            S::is_add_absorbing(&total)
                        },
                        initial_acc,
                    );
                }
                peak = peak.max(rows);
                return (total, peak);
            }
            let mut table = BagTable {
                stride: bag.program.elems.len(),
                rows: Vec::new(),
                values: Vec::new(),
            };
            if !dead {
                run_program::<S>(
                    &bag.program,
                    index,
                    weights,
                    &joins,
                    &mut |row, acc| {
                        if !S::is_zero(&acc) {
                            table.rows.extend_from_slice(row);
                            table.values.push(acc);
                        }
                        false
                    },
                    initial_acc,
                );
            }
            peak = peak.max(table.len());
            if table.len() == 0 {
                return (S::zero(), peak); // some bag admits nothing
            }
            tables[bag.id] = Some(table);
        }
        unreachable!("the root bag is last in children-before-parents order")
    }
}

/// A compiled *answer* program for a query with free variables: the tree DP
/// of [`TreeDpProgram`] over the free-connex closure of a decomposition
/// ([`TreeDecomposition::answer_decomposition`] — every free element
/// adjoined to every bag), plus the positions needed to group by and to pin
/// the free elements.
///
/// Adjoining makes the root bag contain every free element, so one ordinary
/// bottom-up pass yields the whole answer relation by grouping root rows;
/// and it makes *every* bag contain every free element, so a prefix of free
/// images can be pinned uniformly and certified by a single pinned decide.
/// Two evaluation modes share the compiled program:
///
/// * [`AnswerProgram::answer_table`] — one bottom-up pass whose root rows
///   are grouped by the free positions into a packed-key [`GroupTable`]:
///   keys are the answers (free images in declared order), values the
///   ⊕-aggregate over their existential extensions (`true` under
///   [`BoolSemiring`], the extension count under [`CheckedNatSemiring`]).
///   [`AnswerProgram::count_answers`] is its group count.
/// * [`AnswerProgram::cursor`] — bounded-delay enumeration: a pinned-prefix
///   DFS over the free elements in declared order, candidates ascending
///   from the sorted prefilter domains, each prefix certified by a pinned
///   decide.  Emits answers in lexicographically ascending order (the
///   [`BTreeSet`] order of the brute-force projection oracle) without ever
///   materialising the answer set; the work between consecutive answers is
///   bounded by the domains and the DP size, independent of how many
///   answers the query has in total.
///
/// The price of adjoining is width: the answer decomposition is wider than
/// the counting one by at most the number of free elements — the honest
/// cost of answer counting relative to boolean evaluation in the
/// fine-classification setting.  Unweighted semirings only.
pub struct AnswerProgram {
    program: TreeDpProgram,
    /// The free elements of the query, in declared (answer-column) order.
    free: Vec<Element>,
    /// `pin_depths[bag_pos][j]`: the depth of free element `j` in the
    /// element order of `bags[bag_pos]` (present in every bag by
    /// construction).
    pin_depths: Vec<Vec<usize>>,
    /// The root-row positions of the free elements, in declared order.
    root_free_positions: Vec<u32>,
    /// Sorted candidate images of each free element (prefilter domains).
    free_domains: Vec<Vec<u32>>,
    /// Width of the adjoined (answer) decomposition.
    width: usize,
}

impl AnswerProgram {
    /// Compile the answer program for `a` over a valid tree decomposition
    /// `td` of its Gaifman graph, with `free` the canonical-structure
    /// elements of the free variables in declared order (distinct).
    pub fn compile(
        a: &Structure,
        index: &StructureIndex,
        td: &TreeDecomposition,
        free: &[Element],
    ) -> AnswerProgram {
        debug_assert!(
            {
                let mut seen = BTreeSet::new();
                free.iter().all(|f| seen.insert(*f))
            },
            "free elements must be distinct"
        );
        let atd = td.answer_decomposition(free);
        let width = atd.width();
        let program = TreeDpProgram::compile(a, index, &atd);
        let doms = QueryDomains::compile(a, index);
        let pin_depths: Vec<Vec<usize>> = program
            .bags
            .iter()
            .map(|bag| {
                free.iter()
                    .map(|f| {
                        bag.program
                            .elems
                            .iter()
                            .position(|e| e == f)
                            .expect("free elements are adjoined to every bag")
                    })
                    .collect()
            })
            .collect();
        let root_free_positions: Vec<u32> = pin_depths
            .last()
            .expect("decompositions have at least one bag")
            .iter()
            .map(|&d| d as u32)
            .collect();
        let free_domains = free.iter().map(|&f| doms.domain(f).to_vec()).collect();
        AnswerProgram {
            program,
            free: free.to_vec(),
            pin_depths,
            root_free_positions,
            free_domains,
            width,
        }
    }

    /// The identity of the index this program was compiled against.
    pub fn index_id(&self) -> u64 {
        self.program.index_id
    }

    /// Number of free elements (answer columns).
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Width of the adjoined decomposition the DP runs over (the counting
    /// width plus at most the number of free elements).
    pub fn answer_width(&self) -> usize {
        self.width
    }

    /// The full answer relation in one bottom-up pass: root rows grouped by
    /// the free positions.  Keys are answers (free images in declared
    /// order), values the ⊕-aggregate of each answer's existential
    /// extensions.  Iteration order is insertion order — use
    /// [`AnswerProgram::cursor`] when order matters.
    pub fn answer_table<S: Semiring>(&self, index: &StructureIndex) -> GroupTable<S::Value> {
        debug_assert!(!S::WEIGHTED, "answer tables are unweighted-only");
        let p = &self.program;
        debug_assert_eq!(index.id(), p.index_id, "program run on a foreign index");
        let mut out: GroupTable<S::Value> = GroupTable::with_capacity(self.free.len(), 16);
        if !p.satisfiable {
            return out;
        }
        let mut tables: Vec<Option<BagTable<S::Value>>> = (0..p.n_bags).map(|_| None).collect();
        for bag in &p.bags {
            let mut group_tables: Vec<GroupTable<S::Value>> = Vec::with_capacity(bag.edges.len());
            let mut join_specs: Vec<(usize, &[u32])> = Vec::with_capacity(bag.edges.len());
            let mut initial_acc = S::one();
            let mut dead = false;
            for edge in &bag.edges {
                let child = tables[edge.child].take().expect("children before parents");
                let table = child.group_sums::<S>(&edge.child_positions);
                if edge.key_depths.is_empty() {
                    match table.get(&[]) {
                        Some(sum) if !S::is_zero(sum) => initial_acc = S::mul(&initial_acc, sum),
                        _ => dead = true,
                    }
                    continue;
                }
                join_specs.push((edge.depth, &edge.key_depths));
                group_tables.push(table);
            }
            let joins: Vec<Join<'_, S::Value>> = join_specs
                .into_iter()
                .zip(group_tables.iter())
                .map(|((depth, key_depths), table)| Join {
                    depth,
                    key_depths: key_depths.to_vec(),
                    table,
                })
                .collect();
            if bag.is_root {
                // Root rows are grouped by free assignment instead of being
                // ⊕-folded into a scalar; no absorbing early exit — every
                // group must be discovered.
                let mut key: Vec<u32> = Vec::with_capacity(self.free.len());
                if !dead {
                    run_program::<S>(
                        &bag.program,
                        index,
                        None,
                        &joins,
                        &mut |row, acc| {
                            if !S::is_zero(&acc) {
                                key.clear();
                                key.extend(
                                    self.root_free_positions.iter().map(|&p| row[p as usize]),
                                );
                                out.merge(&key, acc, |slot, v| *slot = S::add(slot, &v));
                            }
                            false
                        },
                        initial_acc,
                    );
                }
                return out;
            }
            let mut table = BagTable {
                stride: bag.program.elems.len(),
                rows: Vec::new(),
                values: Vec::new(),
            };
            if !dead {
                run_program::<S>(
                    &bag.program,
                    index,
                    None,
                    &joins,
                    &mut |row, acc| {
                        if !S::is_zero(&acc) {
                            table.rows.extend_from_slice(row);
                            table.values.push(acc);
                        }
                        false
                    },
                    initial_acc,
                );
            }
            if table.len() == 0 {
                return out; // some bag admits nothing: no answers
            }
            tables[bag.id] = Some(table);
        }
        unreachable!("the root bag is last in children-before-parents order")
    }

    /// Number of distinct answers (free-variable assignments extendable to
    /// a full homomorphism).
    pub fn count_answers(&self, index: &StructureIndex) -> u64 {
        self.answer_table::<BoolSemiring>(index).len() as u64
    }

    /// Does some homomorphism map the free elements to `prefix` (a prefix
    /// of the declared free order)?  One bottom-up pass with the prefix
    /// pinned in every bag — the certificate behind each cursor step.
    fn pinned_decide(&self, index: &StructureIndex, prefix: &[u32]) -> bool {
        type B = BoolSemiring;
        let p = &self.program;
        if !p.satisfiable {
            return false;
        }
        let mut tables: Vec<Option<BagTable<bool>>> = (0..p.n_bags).map(|_| None).collect();
        for (pos, bag) in p.bags.iter().enumerate() {
            let mut group_tables: Vec<GroupTable<bool>> = Vec::with_capacity(bag.edges.len());
            let mut join_specs: Vec<(usize, &[u32])> = Vec::with_capacity(bag.edges.len());
            let mut initial_acc = true;
            let mut dead = false;
            for edge in &bag.edges {
                let child = tables[edge.child].take().expect("children before parents");
                let table = child.group_sums::<B>(&edge.child_positions);
                if edge.key_depths.is_empty() {
                    match table.get(&[]) {
                        Some(sum) if !B::is_zero(sum) => initial_acc = B::mul(&initial_acc, sum),
                        _ => dead = true,
                    }
                    continue;
                }
                join_specs.push((edge.depth, &edge.key_depths));
                group_tables.push(table);
            }
            let joins: Vec<Join<'_, bool>> = join_specs
                .into_iter()
                .zip(group_tables.iter())
                .map(|((depth, key_depths), table)| Join {
                    depth,
                    key_depths: key_depths.to_vec(),
                    table,
                })
                .collect();
            let mut pins: Vec<Option<u32>> = vec![None; bag.program.elems.len()];
            for (j, &v) in prefix.iter().enumerate() {
                pins[self.pin_depths[pos][j]] = Some(v);
            }
            let mut joins_at: Vec<Vec<usize>> = vec![Vec::new(); bag.program.elems.len().max(1)];
            for (j, join) in joins.iter().enumerate() {
                joins_at[join.depth].push(j);
            }
            let mut row = vec![0u32; bag.program.elems.len()];
            let mut args = Vec::with_capacity(bag.program.max_arity);
            let mut key = Vec::new();
            if bag.is_root {
                let mut found = false;
                if !dead {
                    enumerate_pinned::<B>(
                        &bag.program,
                        index,
                        &joins_at,
                        &joins,
                        &pins,
                        None,
                        0,
                        &mut row,
                        &mut args,
                        &mut key,
                        &initial_acc,
                        &mut |_, acc| {
                            if acc {
                                found = true;
                            }
                            found
                        },
                    );
                }
                return found;
            }
            let mut table = BagTable {
                stride: bag.program.elems.len(),
                rows: Vec::new(),
                values: Vec::new(),
            };
            if !dead {
                enumerate_pinned::<B>(
                    &bag.program,
                    index,
                    &joins_at,
                    &joins,
                    &pins,
                    None,
                    0,
                    &mut row,
                    &mut args,
                    &mut key,
                    &initial_acc,
                    &mut |r, acc| {
                        if acc {
                            table.rows.extend_from_slice(r);
                            table.values.push(acc);
                        }
                        false
                    },
                );
            }
            if table.len() == 0 {
                return false; // some bag admits nothing under these pins
            }
            tables[bag.id] = Some(table);
        }
        unreachable!("the root bag is last in children-before-parents order")
    }

    /// A bounded-delay cursor over the answers, in lexicographically
    /// ascending order of the free images (declared free order, `u32`
    /// element order within a column).
    pub fn cursor<'a>(&'a self, index: &'a StructureIndex) -> AnswerCursor<'a> {
        debug_assert_eq!(
            index.id(),
            self.program.index_id,
            "cursor on a foreign index"
        );
        AnswerCursor {
            program: self,
            index,
            stack: Vec::new(),
            prefix: Vec::new(),
            state: CursorState::Fresh,
        }
    }
}

enum CursorState {
    /// No answer produced yet.
    Fresh,
    /// `stack`/`prefix` hold the last produced (full) answer.
    Mid,
    /// Exhausted.
    Done,
}

/// Bounded-delay answer enumeration over an [`AnswerProgram`]: a DFS over
/// the free elements in declared order whose every step is certified by a
/// pinned decide, so the cursor only ever walks viable prefixes.  The work
/// per produced answer is bounded by (free count) × (largest free domain) ×
/// (one DP pass) — independent of the total number of answers, with no
/// materialisation and no per-answer state beyond the current prefix.
pub struct AnswerCursor<'a> {
    program: &'a AnswerProgram,
    index: &'a StructureIndex,
    /// Candidate indices of the current viable prefix, one per free slot.
    stack: Vec<usize>,
    /// The images of the current prefix (parallel to `stack`).
    prefix: Vec<u32>,
    state: CursorState,
}

impl AnswerCursor<'_> {
    /// Extend/advance the current viable prefix to the lexicographically
    /// next full assignment, starting the top level at candidate index
    /// `probe`.  Returns `false` when the enumeration is exhausted.
    fn seek(&mut self, mut probe: usize) -> bool {
        let k = self.program.free.len();
        loop {
            let level = self.stack.len();
            debug_assert_eq!(self.prefix.len(), level);
            let dom = &self.program.free_domains[level];
            let mut found = false;
            while probe < dom.len() {
                self.prefix.push(dom[probe]);
                if self.program.pinned_decide(self.index, &self.prefix) {
                    found = true;
                    break;
                }
                self.prefix.pop();
                probe += 1;
            }
            if found {
                self.stack.push(probe);
                if self.stack.len() == k {
                    return true;
                }
                probe = 0;
            } else {
                match self.stack.pop() {
                    Some(prev) => {
                        self.prefix.pop();
                        probe = prev + 1;
                    }
                    None => return false,
                }
            }
        }
    }
}

impl Iterator for AnswerCursor<'_> {
    type Item = Vec<u32>;

    fn next(&mut self) -> Option<Vec<u32>> {
        match self.state {
            CursorState::Done => None,
            CursorState::Fresh => {
                if self.program.free.is_empty() {
                    // Zero free variables: the one empty answer iff the
                    // boolean query holds.
                    self.state = CursorState::Done;
                    return self.program.pinned_decide(self.index, &[]).then(Vec::new);
                }
                self.state = CursorState::Mid;
                if self.seek(0) {
                    Some(self.prefix.clone())
                } else {
                    self.state = CursorState::Done;
                    None
                }
            }
            CursorState::Mid => {
                let last = self.stack.pop().expect("Mid holds a full assignment");
                self.prefix.pop();
                if self.seek(last + 1) {
                    Some(self.prefix.clone())
                } else {
                    self.state = CursorState::Done;
                    None
                }
            }
        }
    }
}

/// Retained evaluation state of one `(TreeDpProgram, semiring)` pair: the
/// per-edge separator group tables of every non-root bag plus the root
/// total, stamped with the index version (and domain epoch) they reflect.
///
/// [`TreeDpProgram::eval_retained`] builds this on first call and then
/// catches it up through the index's mutation log: only bags whose
/// constraints mention a touched relation (or whose child tables changed)
/// are re-evaluated, everything else is reused as-is.  Unweighted
/// semirings only — weights are per-call, so a retained table would pin
/// one weighting.
pub struct TreeIncrementalState<V> {
    /// The [`StructureIndex::version`] these tables were computed at.
    version: u64,
    /// The [`StructureIndex::domain_epoch`] the program's baked domains
    /// assume; an epoch bump invalidates the whole state.
    epoch: u64,
    /// Per bag id: the ⊕-group table toward the parent edge (`None` for
    /// the root).
    edge_tables: Vec<Option<GroupTable<V>>>,
    /// The ⊕-total at the root.
    root_value: V,
}

impl<V> TreeIncrementalState<V> {
    /// The index version this state is synchronized with.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The retained root aggregate.
    pub fn root_value(&self) -> &V {
        &self.root_value
    }
}

/// Metering of one [`TreeDpProgram::eval_retained`] call: how much of the
/// retained state survived.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetainedEvalStats {
    /// The state was (re)built from scratch — first call, an epoch bump,
    /// or a mutation-log gap.
    pub full_rebuild: bool,
    /// Bags whose retained tables were reused untouched.
    pub bags_reused: usize,
    /// Bags patched in place by ⊖/⊕ of delta contributions.
    pub bags_patched: usize,
    /// Bags re-enumerated from scratch.
    pub bags_recomputed: usize,
    /// Largest bag table materialized by this call.
    pub peak_table: usize,
}

/// The join environment of one bag against the retained child tables:
/// borrow-joins plus the folded constant factor of independent components.
struct RetainedJoins<'t, V> {
    joins: Vec<Join<'t, V>>,
    initial_acc: V,
    /// Some independent child has ⊕-total zero — every row of this bag is
    /// dead.
    dead: bool,
}

fn retained_join_setup<'t, S: Semiring>(
    bag: &TreeBag,
    edge_tables: &'t [Option<GroupTable<S::Value>>],
) -> RetainedJoins<'t, S::Value> {
    let mut joins = Vec::with_capacity(bag.edges.len());
    let mut initial_acc = S::one();
    let mut dead = false;
    for edge in &bag.edges {
        let table = edge_tables[edge.child]
            .as_ref()
            .expect("children before parents");
        if edge.key_depths.is_empty() {
            match table.get(&[]) {
                Some(sum) if !S::is_zero(sum) => initial_acc = S::mul(&initial_acc, sum),
                _ => dead = true,
            }
            continue;
        }
        joins.push(Join {
            depth: edge.depth,
            key_depths: edge.key_depths.clone(),
            table,
        });
    }
    RetainedJoins {
        joins,
        initial_acc,
        dead,
    }
}

/// What one full bag evaluation produced.
enum BagOutcome<V> {
    /// The root's ⊕-total.
    Root(V),
    /// A non-root bag's group table toward its parent edge.
    Table(GroupTable<V>),
}

/// Fully evaluate one bag against the retained child tables: the root
/// folds to its total, every other bag materializes its rows and
/// group-sums them onto the parent separator.  Unlike the one-shot
/// [`TreeDpProgram::eval`], an empty table does **not** abort the caller —
/// later refreshes need every bag's table to exist.
fn compute_bag_retained<S: Semiring>(
    bag: &TreeBag,
    index: &StructureIndex,
    edge_tables: &[Option<GroupTable<S::Value>>],
    parent_positions: Option<&[u32]>,
) -> (BagOutcome<S::Value>, usize) {
    let setup = retained_join_setup::<S>(bag, edge_tables);
    if bag.is_root {
        let mut total = S::zero();
        let mut rows = 0usize;
        if !setup.dead {
            run_program::<S>(
                &bag.program,
                index,
                None,
                &setup.joins,
                &mut |_, acc| {
                    if S::is_zero(&acc) {
                        return false;
                    }
                    rows += 1;
                    total = S::add(&total, &acc);
                    S::is_add_absorbing(&total)
                },
                setup.initial_acc,
            );
        }
        return (BagOutcome::Root(total), rows);
    }
    let mut table = BagTable {
        stride: bag.program.elems.len(),
        rows: Vec::new(),
        values: Vec::new(),
    };
    if !setup.dead {
        run_program::<S>(
            &bag.program,
            index,
            None,
            &setup.joins,
            &mut |row, acc| {
                if !S::is_zero(&acc) {
                    table.rows.extend_from_slice(row);
                    table.values.push(acc);
                }
                false
            },
            setup.initial_acc,
        );
    }
    let rows = table.len();
    let positions = parent_positions.expect("non-root bags have a parent edge");
    (BagOutcome::Table(table.group_sums::<S>(positions)), rows)
}

/// Whether two group tables agree on every key with a nonzero value
/// (zero-valued entries — left behind by in-place ⊖-patches — are
/// semantically absent).
fn tables_agree_modulo_zeros<S: Semiring>(
    a: &GroupTable<S::Value>,
    b: &GroupTable<S::Value>,
) -> bool {
    let nonzero = |t: &GroupTable<S::Value>| t.iter().filter(|(_, v)| !S::is_zero(v)).count();
    nonzero(a) == nonzero(b)
        && a.iter()
            .filter(|(_, v)| !S::is_zero(v))
            .all(|(k, v)| b.get(k) == Some(v))
}

/// Map the pinned constraint's argument depths to the concrete elements of
/// one delta tuple.  `None` when the constraint repeats a variable the
/// tuple maps to two different elements — no row of the bag can ever bind
/// the constraint to that tuple.
fn pin_tuple(c: &Constraint, tuple: &[u32], depths: usize) -> Option<Vec<Option<u32>>> {
    let mut pins = vec![None; depths];
    for (q, &d) in c.arg_depths.iter().enumerate() {
        match pins[d as usize] {
            None => pins[d as usize] = Some(tuple[q]),
            Some(prev) if prev == tuple[q] => {}
            Some(_) => return None,
        }
    }
    Some(pins)
}

/// The candidate handler of [`enumerate_pinned`]: place `candidate`, run
/// the anchored checks (skipping the pinned constraint when its tuple was
/// deleted), multiply the joins, recurse.  Returns `true` to stop the
/// whole enumeration.
#[allow(clippy::too_many_arguments)]
fn pinned_candidate<S: Semiring>(
    program: &BagProgram,
    index: &StructureIndex,
    joins_at: &[Vec<usize>],
    joins: &[Join<'_, S::Value>],
    pins: &[Option<u32>],
    skip: Option<(usize, usize)>,
    depth: usize,
    candidate: u32,
    row: &mut [u32],
    args: &mut Vec<u32>,
    key: &mut Vec<u32>,
    acc: &S::Value,
    emit: &mut impl FnMut(&[u32], S::Value) -> bool,
) -> bool {
    row[depth] = candidate;
    for (i, c) in program.checks[depth].iter().enumerate() {
        if skip == Some((depth, i)) {
            continue;
        }
        args.clear();
        args.extend(c.arg_depths.iter().map(|&d| row[d as usize]));
        if !index.contains(c.sym, args) {
            return false;
        }
    }
    let mut next_acc = acc.clone();
    for &j in &joins_at[depth] {
        let join = &joins[j];
        key.clear();
        key.extend(join.key_depths.iter().map(|&d| row[d as usize]));
        match join.table.get(key.as_slice()) {
            Some(v) => next_acc = S::mul(&next_acc, v),
            None => return false,
        }
    }
    enumerate_pinned::<S>(
        program,
        index,
        joins_at,
        joins,
        pins,
        skip,
        depth + 1,
        row,
        args,
        key,
        &next_acc,
        emit,
    )
}

/// [`enumerate`] with some depths pinned to fixed images: pinned depths
/// take exactly their candidate, free depths scan their prefilter domain.
/// Drivers are not used — delta enumerations are tiny and the pinned
/// constraint's tuple may no longer be in the index.  Unweighted semirings
/// only.
#[allow(clippy::too_many_arguments)]
fn enumerate_pinned<S: Semiring>(
    program: &BagProgram,
    index: &StructureIndex,
    joins_at: &[Vec<usize>],
    joins: &[Join<'_, S::Value>],
    pins: &[Option<u32>],
    skip: Option<(usize, usize)>,
    depth: usize,
    row: &mut [u32],
    args: &mut Vec<u32>,
    key: &mut Vec<u32>,
    acc: &S::Value,
    emit: &mut impl FnMut(&[u32], S::Value) -> bool,
) -> bool {
    if depth == program.elems.len() {
        return emit(row, acc.clone());
    }
    if let Some(v) = pins[depth] {
        // A pinned image outside the baked domain admits no rows (baked
        // domains stay supersets of the live ones within an epoch).
        if program.domains[depth].binary_search(&v).is_err() {
            return false;
        }
        return pinned_candidate::<S>(
            program, index, joins_at, joins, pins, skip, depth, v, row, args, key, acc, emit,
        );
    }
    for &candidate in &program.domains[depth] {
        if pinned_candidate::<S>(
            program, index, joins_at, joins, pins, skip, depth, candidate, row, args, key, acc,
            emit,
        ) {
            return true;
        }
    }
    false
}

/// Where a delta patch lands: a non-root bag's parent-edge group table, or
/// the root total itself.
enum PatchTarget<'a, V> {
    Edge {
        table: &'a mut GroupTable<V>,
        positions: &'a [u32],
    },
    Root(&'a mut V),
}

/// Patch one bag's retained aggregate in place from a single mutation
/// round: for every deleted tuple of the pinned constraint's relation,
/// enumerate the rows that bound the constraint to it (they were valid
/// before the round, the other checks are untouched) and ⊖ their
/// contributions; for every inserted tuple, enumerate and ⊕.  Records the
/// pre-patch value of every touched key and sets `changed` only when some
/// key's value genuinely moved (modulo zeros), so a round that cancels
/// out stops propagating to the parent.  Returns `false` when a
/// subtraction cannot be answered exactly — the caller must fully
/// recompute the bag (the half-patched target is discarded).
fn patch_bag<S: Semiring>(
    bag: &TreeBag,
    index: &StructureIndex,
    round: &AppliedDelta,
    pinned_at: (usize, usize),
    edge_tables: &[Option<GroupTable<S::Value>>],
    mut target: PatchTarget<'_, S::Value>,
    changed: &mut bool,
) -> bool {
    let setup = retained_join_setup::<S>(bag, edge_tables);
    if setup.dead {
        // Every row of this bag is annihilated by an empty independent
        // component, before and after the round alike.
        *changed = false;
        return true;
    }
    let mut joins_at: Vec<Vec<usize>> = vec![Vec::new(); bag.program.elems.len().max(1)];
    for (j, join) in setup.joins.iter().enumerate() {
        joins_at[join.depth].push(j);
    }
    let c = &bag.program.checks[pinned_at.0][pinned_at.1];
    let n = bag.program.elems.len();
    let mut row = vec![0u32; n];
    let mut args = Vec::with_capacity(bag.program.max_arity);
    let mut key = Vec::new();
    let mut pkey: Vec<u32> = Vec::new();
    // Pre-patch values of the keys this round touches (`None` = the key
    // was absent), recorded on first touch — O(delta), not O(table).
    let mut pre: Vec<(Vec<u32>, Option<S::Value>)> = Vec::new();
    let pre_root = match &target {
        PatchTarget::Root(total) => Some((*total).clone()),
        PatchTarget::Edge { .. } => None,
    };
    let mut ok = true;
    for (sym, _, tuple) in round.deletions() {
        if *sym != c.sym {
            continue;
        }
        let Some(pins) = pin_tuple(c, tuple, n) else {
            continue;
        };
        enumerate_pinned::<S>(
            &bag.program,
            index,
            &joins_at,
            &setup.joins,
            &pins,
            Some(pinned_at),
            0,
            &mut row,
            &mut args,
            &mut key,
            &setup.initial_acc,
            &mut |r, acc| {
                if S::is_zero(&acc) {
                    return false;
                }
                let applied = match &mut target {
                    PatchTarget::Edge { table, positions } => {
                        pkey.clear();
                        pkey.extend(positions.iter().map(|&p| r[p as usize]));
                        if !pre.iter().any(|(k, _)| k == &pkey) {
                            pre.push((pkey.clone(), table.get(&pkey).cloned()));
                        }
                        match table.get_mut(&pkey) {
                            Some(slot) => match S::sub(slot, &acc) {
                                Some(left) => {
                                    *slot = left;
                                    true
                                }
                                None => false,
                            },
                            None => false,
                        }
                    }
                    PatchTarget::Root(total) => match S::sub(total, &acc) {
                        Some(left) => {
                            **total = left;
                            true
                        }
                        None => false,
                    },
                };
                if !applied {
                    ok = false;
                }
                !applied
            },
        );
        if !ok {
            return false;
        }
    }
    for (sym, tuple) in round.insertions() {
        if *sym != c.sym {
            continue;
        }
        let Some(pins) = pin_tuple(c, tuple, n) else {
            continue;
        };
        enumerate_pinned::<S>(
            &bag.program,
            index,
            &joins_at,
            &setup.joins,
            &pins,
            None,
            0,
            &mut row,
            &mut args,
            &mut key,
            &setup.initial_acc,
            &mut |r, acc| {
                if S::is_zero(&acc) {
                    return false;
                }
                match &mut target {
                    PatchTarget::Edge { table, positions } => {
                        pkey.clear();
                        pkey.extend(positions.iter().map(|&p| r[p as usize]));
                        if !pre.iter().any(|(k, _)| k == &pkey) {
                            pre.push((pkey.clone(), table.get(&pkey).cloned()));
                        }
                        table.merge(&pkey, acc, |a, v| *a = S::add(a, &v));
                    }
                    PatchTarget::Root(total) => **total = S::add(total, &acc),
                }
                false
            },
        );
    }
    *changed = match (&target, pre_root) {
        (PatchTarget::Root(total), Some(before)) => **total != before,
        _ => {
            let PatchTarget::Edge { table, .. } = &target else {
                unreachable!("pre_root is Some exactly for the root target")
            };
            pre.iter().any(|(k, before)| {
                let now = table.get(k).filter(|v| !S::is_zero(v));
                let before = before.as_ref().filter(|v| !S::is_zero(v));
                now != before
            })
        }
    };
    true
}

impl TreeDpProgram {
    /// Per bag id, the separator positions (in the bag's own row order)
    /// toward its parent edge; `None` for the root.
    fn parent_positions(&self) -> Vec<Option<&[u32]>> {
        let mut out: Vec<Option<&[u32]>> = vec![None; self.n_bags];
        for bag in &self.bags {
            for e in &bag.edges {
                out[e.child] = Some(&e.child_positions);
            }
        }
        out
    }

    /// Build the retained state from scratch (every bag evaluated once).
    fn build_retained<S: Semiring>(
        &self,
        index: &StructureIndex,
        stats: &mut RetainedEvalStats,
    ) -> TreeIncrementalState<S::Value> {
        let mut st = TreeIncrementalState {
            version: index.version(),
            epoch: index.domain_epoch(),
            edge_tables: (0..self.n_bags).map(|_| None).collect(),
            root_value: S::zero(),
        };
        stats.full_rebuild = true;
        let parent_pos = self.parent_positions();
        for bag in &self.bags {
            let (out, rows) =
                compute_bag_retained::<S>(bag, index, &st.edge_tables, parent_pos[bag.id]);
            stats.peak_table = stats.peak_table.max(rows);
            stats.bags_recomputed += 1;
            match out {
                BagOutcome::Root(v) => st.root_value = v,
                BagOutcome::Table(t) => st.edge_tables[bag.id] = Some(t),
            }
        }
        st
    }

    /// The incremental sum-of-products: like [`TreeDpProgram::eval`], but
    /// the per-edge group tables live in `state` across calls and only the
    /// bags affected by the index's mutation log since `state`'s version
    /// are re-evaluated.
    ///
    /// A bag is *dirty* when one of its constraints mentions a relation
    /// touched by a pending round, or when a child's table changed.  Dirty
    /// bags are re-enumerated from scratch — except that under an
    /// invertible semiring ([`Semiring::INVERTIBLE`]) a single pending
    /// round touching exactly one constraint of the bag is patched in
    /// place: the rows binding that constraint to each deleted/inserted
    /// tuple are enumerated with the constraint's depths pinned, and their
    /// contributions ⊖-retracted / ⊕-added.  Change is detected modulo
    /// zero-valued entries, so a round that cancels out stops propagating.
    ///
    /// Unweighted semirings only (`!S::WEIGHTED` — weights are per-call).
    /// Passing a `state` from another program or semiring is a logic
    /// error.
    pub fn eval_retained<S: Semiring>(
        &self,
        index: &StructureIndex,
        state: &mut Option<TreeIncrementalState<S::Value>>,
    ) -> (S::Value, RetainedEvalStats) {
        debug_assert!(!S::WEIGHTED, "retained evaluation is unweighted-only");
        debug_assert_eq!(index.id(), self.index_id, "program run on a foreign index");
        let mut stats = RetainedEvalStats::default();
        if !self.satisfiable {
            return (S::zero(), stats);
        }
        let muts = match state.as_ref() {
            Some(st) if st.epoch == index.domain_epoch() => index.mutations_since(st.version),
            _ => None,
        };
        let Some(muts) = muts else {
            let st = self.build_retained::<S>(index, &mut stats);
            let value = st.root_value.clone();
            *state = Some(st);
            return (value, stats);
        };
        let st = state.as_mut().expect("mutations_since implies state");
        let mut touched: Vec<SymbolId> = Vec::new();
        for round in &muts {
            for sym in round.touched_symbols() {
                if !touched.contains(&sym) {
                    touched.push(sym);
                }
            }
        }
        if touched.is_empty() {
            st.version = index.version();
            stats.bags_reused = self.bags.len();
            return (st.root_value.clone(), stats);
        }
        let single_round = muts.len() == 1;
        let parent_pos = self.parent_positions();
        let mut changed = vec![false; self.n_bags];
        for bag in &self.bags {
            let child_changed = bag.edges.iter().any(|e| changed[e.child]);
            let affected: Vec<(usize, usize)> = bag
                .program
                .checks
                .iter()
                .enumerate()
                .flat_map(|(d, cs)| {
                    cs.iter()
                        .enumerate()
                        .filter(|(_, c)| touched.contains(&c.sym))
                        .map(move |(i, _)| (d, i))
                })
                .collect();
            if !child_changed && affected.is_empty() {
                stats.bags_reused += 1;
                continue;
            }
            let mut old_untrusted = false;
            if S::INVERTIBLE
                && !S::WEIGHTED
                && single_round
                && !child_changed
                && affected.len() == 1
            {
                // Pull the bag's own state out so the child tables can be
                // borrowed immutably next to it.
                let mut own = if bag.is_root {
                    None
                } else {
                    Some(st.edge_tables[bag.id].take().expect("built state"))
                };
                let mut root = st.root_value.clone();
                let mut any = false;
                let target = match (&mut own, parent_pos[bag.id]) {
                    (Some(table), Some(positions)) => PatchTarget::Edge { table, positions },
                    _ => PatchTarget::Root(&mut root),
                };
                let ok = patch_bag::<S>(
                    bag,
                    index,
                    &muts[0],
                    affected[0],
                    &st.edge_tables,
                    target,
                    &mut any,
                );
                if ok {
                    if bag.is_root {
                        st.root_value = root;
                    } else {
                        st.edge_tables[bag.id] = own;
                    }
                    changed[bag.id] = any;
                    stats.bags_patched += 1;
                    continue;
                }
                // The patch failed partway (a ⊖ could not answer); the old
                // table can no longer anchor change detection.
                old_untrusted = true;
            }
            let (out, rows) =
                compute_bag_retained::<S>(bag, index, &st.edge_tables, parent_pos[bag.id]);
            stats.peak_table = stats.peak_table.max(rows);
            stats.bags_recomputed += 1;
            match out {
                BagOutcome::Root(v) => {
                    st.root_value = v;
                    changed[bag.id] = true;
                }
                BagOutcome::Table(t) => {
                    changed[bag.id] = old_untrusted
                        || match &st.edge_tables[bag.id] {
                            Some(old) => !tables_agree_modulo_zeros::<S>(old, &t),
                            None => true,
                        };
                    st.edge_tables[bag.id] = Some(t);
                }
            }
        }
        st.version = index.version();
        (st.root_value.clone(), stats)
    }
}

/// Decide `HOM(A, B)` by the kernel tree DP over a valid tree
/// decomposition of `A`'s Gaifman graph (see the module docs; the
/// reference implementation is [`crate::treedec::hom_via_tree_decomposition`]).
pub fn hom_via_tree_decomposition_indexed(
    a: &Structure,
    index: &StructureIndex,
    td: &TreeDecomposition,
) -> TreeDpRun {
    TreeDpProgram::compile(a, index, td).decide(index)
}

/// Count homomorphisms from `a` into the indexed target by the kernel tree
/// DP (group-sum separator joins; reference:
/// [`crate::treedec::count_hom_via_tree_decomposition`]).
pub fn count_hom_via_tree_decomposition_indexed(
    a: &Structure,
    index: &StructureIndex,
    td: &TreeDecomposition,
) -> TreeDpRun {
    TreeDpProgram::compile(a, index, td).count(index)
}

/// Aggregate over a tree decomposition in an arbitrary semiring with
/// per-tuple weights — `min_cost` / `max_weight` are
/// `aggregate_via_tree_decomposition_indexed::<MinCostSemiring>` /
/// `::<MaxWeightSemiring>`.
pub fn aggregate_via_tree_decomposition_indexed<S: Semiring>(
    a: &Structure,
    index: &StructureIndex,
    td: &TreeDecomposition,
    weights: &TupleWeights,
) -> S::Value {
    TreeDpProgram::compile(a, index, td)
        .eval::<S>(index, Some(weights))
        .0
}

/// One step of a compiled staircase sweep.
enum StairStep {
    /// Project the frontier onto the surviving positions, ⊕-merging rows
    /// that collide.
    Forget {
        /// Positions (in the pre-step order) of the surviving elements.
        positions: Vec<u32>,
    },
    /// Extend every frontier row through a program whose first
    /// `prefix_len` depths are pinned to the row.
    Introduce {
        program: BagProgram,
        prefix_len: usize,
    },
}

/// The kernel staircase sweep compiled against one `(query, index)` pair:
/// the first-bag program plus the forget/introduce step sequence with all
/// element-order bookkeeping resolved at compile time.
///
/// Each query tuple is checked exactly once across the sweep — in the
/// introduce step assigning its last element (path-decomposition
/// contiguity: elements never return once forgotten) — so every check
/// owns its weight factor and the sweep is a sound ⊕/⊗ evaluation for any
/// semiring, not just decision.
pub struct StairProgram {
    index_id: u64,
    satisfiable: bool,
    bags: usize,
    width: usize,
    init: BagProgram,
    steps: Vec<StairStep>,
}

impl StairProgram {
    /// Compile the sweep for `a` over a staircase path decomposition
    /// against the indexed target.
    pub fn compile(a: &Structure, index: &StructureIndex, stair: &PathDecomposition) -> Self {
        debug_assert!(stair.is_staircase());
        let doms = QueryDomains::compile(a, index);
        let mut order: Vec<Element> = match stair.bags.first() {
            Some(first) => first.iter().copied().collect(),
            None => Vec::new(),
        };
        let init = BagProgram::compile(a, &doms, &order);
        let mut steps = Vec::new();
        if doms.satisfiable {
            for window in stair.bags.windows(2) {
                let (prev, next) = (&window[0], &window[1]);
                if next.is_subset(prev) {
                    let keep: Vec<Element> = next.iter().copied().collect();
                    let positions: Vec<u32> = keep
                        .iter()
                        .map(|e| order.iter().position(|x| x == e).expect("next ⊆ prev") as u32)
                        .collect();
                    order = keep;
                    steps.push(StairStep::Forget { positions });
                } else {
                    let new_elems: Vec<Element> = next.difference(prev).copied().collect();
                    let mut next_order = order.clone();
                    next_order.extend(new_elems.iter().copied());
                    let program = BagProgram::compile(a, &doms, &next_order);
                    steps.push(StairStep::Introduce {
                        program,
                        prefix_len: order.len(),
                    });
                    order = next_order;
                }
            }
        }
        StairProgram {
            index_id: index.id(),
            satisfiable: doms.satisfiable,
            bags: stair.bags.len(),
            width: stair.width(),
            init,
            steps,
        }
    }

    /// The identity of the index this program was compiled against.
    pub fn index_id(&self) -> u64 {
        self.index_id
    }

    /// Decide `HOM(A, B)` — the [`BoolSemiring`] instantiation of
    /// [`StairProgram::eval`], packaged as the sweep report.
    pub fn run(&self, index: &StructureIndex) -> PathDpReport {
        let (exists, peak_frontier) = self.eval::<BoolSemiring>(index, None);
        PathDpReport {
            exists,
            peak_frontier,
            bags: self.bags,
            width: self.width,
        }
    }

    /// Count homomorphisms by the sweep — the [`CheckedNatSemiring`]
    /// instantiation (the frontier values are partial-hom counts).
    pub fn count(&self, index: &StructureIndex) -> Nat {
        self.eval::<CheckedNatSemiring>(index, None).0
    }

    /// The generic staircase sweep: the frontier is a flat row table with
    /// one semiring value per row (the ⊕-aggregate over all partial
    /// homomorphisms projecting to the row); forget steps group-sum,
    /// introduce steps extend with pinned prefixes.  Returns the final
    /// ⊕-total and the peak frontier size.
    pub fn eval<S: Semiring>(
        &self,
        index: &StructureIndex,
        weights: Option<&TupleWeights>,
    ) -> (S::Value, usize) {
        debug_assert_eq!(index.id(), self.index_id, "program run on a foreign index");
        let mut peak = 0usize;
        if !self.satisfiable {
            return (S::zero(), peak);
        }
        // The frontier: rows of `stride` elements, one value per row.
        let mut frontier: BagTable<S::Value> = BagTable {
            stride: self.init.elems.len(),
            rows: Vec::new(),
            values: Vec::new(),
        };
        {
            let f = &mut frontier;
            run_program::<S>(
                &self.init,
                index,
                weights,
                &[],
                &mut |row, acc| {
                    if !S::is_zero(&acc) {
                        f.rows.extend_from_slice(row);
                        f.values.push(acc);
                    }
                    false
                },
                S::one(),
            );
        }
        peak = peak.max(frontier.len());
        if frontier.len() == 0 {
            return (S::zero(), peak);
        }

        for step in &self.steps {
            match step {
                StairStep::Forget { positions } => {
                    let (rows, values) = frontier.group_sums::<S>(positions).into_flat();
                    frontier = BagTable {
                        stride: positions.len(),
                        rows,
                        values,
                    };
                }
                StairStep::Introduce {
                    program,
                    prefix_len,
                } => {
                    // Constraints fully inside the old bag were checked
                    // when it was built; only checks anchored at the new
                    // depths run.  Distinct old rows extend to distinct
                    // full rows, so no merging is needed.
                    let prefix_len = *prefix_len;
                    let new_stride = program.elems.len();
                    let mut new_frontier: BagTable<S::Value> = BagTable {
                        stride: new_stride,
                        rows: Vec::new(),
                        values: Vec::new(),
                    };
                    let mut row = vec![0u32; new_stride];
                    let mut args = Vec::with_capacity(program.max_arity);
                    let mut key = Vec::new();
                    let mut scratch = vec![Vec::new(); new_stride];
                    let joins_at: Vec<Vec<usize>> = vec![Vec::new(); new_stride.max(1)];
                    for i in 0..frontier.len() {
                        row[..prefix_len].copy_from_slice(frontier.row(i));
                        let nf = &mut new_frontier;
                        enumerate::<S>(
                            program,
                            index,
                            weights,
                            &joins_at,
                            &[],
                            prefix_len,
                            &mut row,
                            &mut args,
                            &mut key,
                            &frontier.values[i],
                            &mut scratch,
                            &mut |full, acc| {
                                if !S::is_zero(&acc) {
                                    nf.rows.extend_from_slice(full);
                                    nf.values.push(acc);
                                }
                                false
                            },
                        );
                    }
                    frontier = new_frontier;
                }
            }
            peak = peak.max(frontier.len());
            if frontier.len() == 0 {
                return (S::zero(), peak);
            }
        }
        let mut total = S::zero();
        for v in &frontier.values {
            total = S::add(&total, v);
            if S::is_add_absorbing(&total) {
                break;
            }
        }
        (total, peak)
    }
}

/// Decide `HOM(A, B)` by sweeping a staircase path decomposition with flat
/// frontier rows (reference: [`crate::pathdp::hom_via_staircase`]).
///
/// Forget steps project the frontier onto the surviving positions and
/// ⊕-merge collisions through the packed-key [`GroupTable`] (the separator
/// in staircase form is the smaller bag itself); introduce steps extend
/// each row through a [`BagProgram`] whose first depths are pinned to the
/// row.
pub fn hom_via_staircase_indexed(
    a: &Structure,
    index: &StructureIndex,
    stair: &PathDecomposition,
) -> PathDpReport {
    StairProgram::compile(a, index, stair).run(index)
}

/// Count homomorphisms by the kernel staircase sweep — the pathwidth
/// tier's counting entry point (checked arithmetic, typed overflow).
pub fn count_via_staircase_indexed(
    a: &Structure,
    index: &StructureIndex,
    stair: &PathDecomposition,
) -> Nat {
    StairProgram::compile(a, index, stair).count(index)
}

/// Aggregate over a staircase sweep in an arbitrary semiring with
/// per-tuple weights.
pub fn aggregate_via_staircase_indexed<S: Semiring>(
    a: &Structure,
    index: &StructureIndex,
    stair: &PathDecomposition,
    weights: &TupleWeights,
) -> S::Value {
    StairProgram::compile(a, index, stair)
        .eval::<S>(index, Some(weights))
        .0
}

/// The forest topology and per-node constraints of a compiled forest
/// evaluation: for each node, the tuples of the query whose deepest
/// element in the forest it is (all other elements are ancestors, hence
/// assigned when the node is visited).  Tuple entries are query elements.
/// The anchoring is a partition of the query's tuples, so every check
/// owns its weight factor.
struct ForestChecks {
    children: Vec<Vec<usize>>,
    roots: Vec<usize>,
    checks: Vec<Vec<(SymbolId, Vec<u32>)>>,
    max_arity: usize,
}

impl ForestChecks {
    fn compile(a: &Structure, doms: &QueryDomains, forest: &EliminationForest) -> ForestChecks {
        let depths = forest.depths();
        let mut checks: Vec<Vec<(SymbolId, Vec<u32>)>> = vec![Vec::new(); a.universe_size()];
        let mut max_arity = 0;
        if doms.satisfiable {
            for (sym, t) in a.all_tuples() {
                let target = doms.sym_map[sym.index()].expect("satisfiable query");
                let anchor = t
                    .iter()
                    .copied()
                    .max_by_key(|&e| depths[e as usize])
                    .expect("tuples are non-empty");
                max_arity = max_arity.max(t.len());
                checks[anchor as usize].push((target, t.to_vec()));
            }
        }
        ForestChecks {
            children: forest.children(),
            roots: forest.roots(),
            checks,
            max_arity,
        }
    }
}

/// Result of a kernel forest evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ForestRun {
    /// Whether a homomorphism exists.
    pub exists: bool,
    /// The number of homomorphisms ([`Nat::Overflow`] past `u64::MAX`;
    /// the decision entry point stops early and reports 0/1).
    pub count: Nat,
    /// Candidate images tried across the whole run (a work figure).
    pub assignments: u64,
}

/// The generic sum–product recursion of the forest evaluations: the
/// ⊕-aggregate over extensions of the current ancestor assignment to the
/// subtree at `v` of the ⊗-product of tuple factors.  The absorbing-element
/// early exit reproduces decision's first-witness stop under
/// [`BoolSemiring`].
#[allow(clippy::too_many_arguments)]
fn forest_subtree<S: Semiring>(
    program: &ForestChecks,
    doms: &QueryDomains,
    index: &StructureIndex,
    weights: Option<&TupleWeights>,
    v: usize,
    assignment: &mut [u32],
    args: &mut Vec<u32>,
    stats: &mut u64,
) -> S::Value {
    let mut total = S::zero();
    'candidates: for &image in doms.domain(v) {
        *stats += 1;
        assignment[v] = image;
        let mut product = S::one();
        for (sym, t) in &program.checks[v] {
            args.clear();
            args.extend(t.iter().map(|&e| assignment[e as usize]));
            if S::WEIGHTED {
                let table = weights.expect("weighted semirings evaluate with a TupleWeights table");
                match index.row_of(*sym, args) {
                    None => continue 'candidates,
                    Some(r) => product = S::mul(&product, &S::weight(table.get(*sym, r))),
                }
            } else if !index.contains(*sym, args) {
                continue 'candidates;
            }
        }
        for &c in &program.children[v] {
            let sub =
                forest_subtree::<S>(program, doms, index, weights, c, assignment, args, stats);
            product = S::mul(&product, &sub);
            if S::is_zero(&product) {
                break;
            }
        }
        total = S::add(&total, &product);
        if S::is_add_absorbing(&total) {
            return total;
        }
    }
    total
}

/// The kernel sum–product forest evaluation compiled against one
/// `(query, index)` pair: prefilter domains plus per-node anchored
/// constraints.  Compile once, then [`ForestProgram::decide`] /
/// [`ForestProgram::count`] / [`ForestProgram::eval`] many times against
/// the same index — the program is semiring-agnostic.
pub struct ForestProgram {
    index_id: u64,
    satisfiable: bool,
    doms: QueryDomains,
    checks: ForestChecks,
    universe: usize,
}

impl ForestProgram {
    /// Compile the forest evaluation for `a` over a valid elimination
    /// forest of its Gaifman graph against the indexed target.
    pub fn compile(
        a: &Structure,
        index: &StructureIndex,
        forest: &EliminationForest,
    ) -> ForestProgram {
        debug_assert!(forest.is_valid_for(&cq_graphs::gaifman_graph(a)));
        let doms = QueryDomains::compile(a, index);
        let checks = ForestChecks::compile(a, &doms, forest);
        ForestProgram {
            index_id: index.id(),
            satisfiable: doms.satisfiable,
            doms,
            checks,
            universe: a.universe_size(),
        }
    }

    /// The identity of the index this program was compiled against.
    pub fn index_id(&self) -> u64 {
        self.index_id
    }

    /// Count homomorphisms by the sum–product recursion
    /// ([`CheckedNatSemiring`]; overflow typed, never clamped).
    pub fn count(&self, index: &StructureIndex) -> ForestRun {
        let mut assignments = 0u64;
        let value = self.eval::<CheckedNatSemiring>(index, None, &mut assignments);
        ForestRun {
            exists: value.positive(),
            count: value,
            assignments,
        }
    }

    /// Decide `HOM(A, B)` — [`BoolSemiring`], with the absorbing `⊤`
    /// giving the first-witness early exit.
    pub fn decide(&self, index: &StructureIndex) -> ForestRun {
        let mut assignments = 0u64;
        let value = self.eval::<BoolSemiring>(index, None, &mut assignments);
        ForestRun {
            exists: value,
            count: Nat::Finite(u64::from(value)),
            assignments,
        }
    }

    /// The generic sum–product: roots are independent, so their aggregates
    /// ⊗-multiply.  `assignments` meters candidate images tried.
    pub fn eval<S: Semiring>(
        &self,
        index: &StructureIndex,
        weights: Option<&TupleWeights>,
        assignments: &mut u64,
    ) -> S::Value {
        debug_assert_eq!(index.id(), self.index_id, "program run on a foreign index");
        if !self.satisfiable {
            return S::zero();
        }
        let mut assignment = vec![0u32; self.universe];
        let mut args = Vec::with_capacity(self.checks.max_arity);
        let mut result = S::one();
        for &root in &self.checks.roots {
            let sub = forest_subtree::<S>(
                &self.checks,
                &self.doms,
                index,
                weights,
                root,
                &mut assignment,
                &mut args,
                assignments,
            );
            result = S::mul(&result, &sub);
            if S::is_zero(&result) {
                break;
            }
        }
        result
    }
}

/// Count homomorphisms by the kernel sum–product recursion over an
/// elimination forest of `a` (reference:
/// [`crate::treedepth::count_with_forest`]).
pub fn count_with_forest_indexed(
    a: &Structure,
    index: &StructureIndex,
    forest: &EliminationForest,
) -> ForestRun {
    ForestProgram::compile(a, index, forest).count(index)
}

/// Decide `HOM(A, B)` by the same recursion with first-witness early exit
/// — the kernel decision procedure licensed by bounded tree depth.
pub fn hom_via_forest_indexed(
    a: &Structure,
    index: &StructureIndex,
    forest: &EliminationForest,
) -> ForestRun {
    ForestProgram::compile(a, index, forest).decide(index)
}

/// Aggregate over an elimination forest in an arbitrary semiring with
/// per-tuple weights.
pub fn aggregate_with_forest_indexed<S: Semiring>(
    a: &Structure,
    index: &StructureIndex,
    forest: &EliminationForest,
    weights: &TupleWeights,
) -> S::Value {
    let mut assignments = 0u64;
    ForestProgram::compile(a, index, forest).eval::<S>(index, Some(weights), &mut assignments)
}

/// Statistics of one kernel backtracking search.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelSearchStats {
    /// Candidate images tried (witness search) or complete rows visited
    /// (semiring aggregation).
    pub assignments: u64,
    /// Whether the prefilter alone refuted the instance (some domain
    /// empty before any search).
    pub decided_by_prefilter: bool,
}

/// The structure-agnostic kernel fallback compiled against one
/// `(query, index)` pair: the whole query as a single [`BagProgram`]
/// (index-driven candidate domains, incremental constraint checks) in the
/// chosen element order.
pub struct SearchProgram {
    index_id: u64,
    /// The prefilter refuted the instance at compile time (unsatisfiable
    /// vocabulary or some empty domain).
    refuted: bool,
    order: Vec<Element>,
    program: BagProgram,
    universe: usize,
}

impl SearchProgram {
    /// Compile the whole-query search.  With `fail_first` the element
    /// order is by increasing prefilter-domain size; otherwise element
    /// order.
    pub fn compile(a: &Structure, index: &StructureIndex, fail_first: bool) -> SearchProgram {
        let doms = QueryDomains::compile(a, index);
        let refuted = !doms.satisfiable || doms.domains.iter().any(|d| d.is_empty());
        let mut order: Vec<Element> = (0..a.universe_size()).collect();
        if fail_first {
            order.sort_by_key(|&e| doms.domains[e].len());
        }
        let program = BagProgram::compile(a, &doms, &order);
        SearchProgram {
            index_id: index.id(),
            refuted,
            order,
            program,
            universe: a.universe_size(),
        }
    }

    /// The identity of the index this program was compiled against.
    pub fn index_id(&self) -> u64 {
        self.index_id
    }

    /// Search for a first complete row; returns the witness as a total
    /// map plus search statistics.  (Witness *extraction* is the one
    /// entry point that is not a semiring fold — it returns an assignment,
    /// not an aggregate.)
    pub fn run(&self, index: &StructureIndex) -> (Option<Vec<Element>>, KernelSearchStats) {
        debug_assert_eq!(index.id(), self.index_id, "program run on a foreign index");
        let mut stats = KernelSearchStats::default();
        if self.refuted {
            stats.decided_by_prefilter = true;
            return (None, stats);
        }
        // A plain domain-scan search so `stats.assignments` counts every
        // candidate image tried (the driver path would skip some).
        fn search(
            program: &BagProgram,
            index: &StructureIndex,
            depth: usize,
            row: &mut [u32],
            args: &mut Vec<u32>,
            assignments: &mut u64,
        ) -> bool {
            if depth == program.elems.len() {
                return true;
            }
            for &candidate in &program.domains[depth] {
                *assignments += 1;
                row[depth] = candidate;
                if program.checks_pass(index, depth, row, args)
                    && search(program, index, depth + 1, row, args, assignments)
                {
                    return true;
                }
            }
            false
        }
        let mut row = vec![0u32; self.order.len()];
        let mut args = Vec::with_capacity(self.program.max_arity);
        let mut witness: Option<Vec<Element>> = None;
        if search(
            &self.program,
            index,
            0,
            &mut row,
            &mut args,
            &mut stats.assignments,
        ) {
            let mut total = vec![0 as Element; self.universe];
            for (d, &e) in self.order.iter().enumerate() {
                total[e] = row[d] as Element;
            }
            witness = Some(total);
        }
        (witness, stats)
    }

    /// ⊕-aggregate over **all** homomorphisms through the whole-query
    /// program — the structure-free tier of counting and the weighted
    /// aggregates (each tuple is anchored exactly once, so every check
    /// owns its weight).  `stats.assignments` counts complete rows
    /// visited.
    pub fn aggregate<S: Semiring>(
        &self,
        index: &StructureIndex,
        weights: Option<&TupleWeights>,
    ) -> (S::Value, KernelSearchStats) {
        debug_assert_eq!(index.id(), self.index_id, "program run on a foreign index");
        let mut stats = KernelSearchStats::default();
        if self.refuted {
            stats.decided_by_prefilter = true;
            return (S::zero(), stats);
        }
        let mut total = S::zero();
        run_program::<S>(
            &self.program,
            index,
            weights,
            &[],
            &mut |_, acc| {
                stats.assignments += 1;
                if S::is_zero(&acc) {
                    return false;
                }
                total = S::add(&total, &acc);
                S::is_add_absorbing(&total)
            },
            S::one(),
        );
        (total, stats)
    }
}

/// The structure-agnostic kernel fallback: the whole query compiled as a
/// single [`BagProgram`] searched for a first complete row.  (Reference:
/// the backtracking searches of [`crate::backtrack::BacktrackSolver`] and
/// [`cq_structures::find_homomorphism`].)
pub fn find_hom_indexed(
    a: &Structure,
    index: &StructureIndex,
    fail_first: bool,
) -> (Option<Vec<Element>>, KernelSearchStats) {
    SearchProgram::compile(a, index, fail_first).run(index)
}

/// Aggregate over all homomorphisms by exhaustive (fail-first ordered)
/// search in an arbitrary semiring — the no-structural-guarantee tier.
pub fn aggregate_via_search_indexed<S: Semiring>(
    a: &Structure,
    index: &StructureIndex,
    weights: &TupleWeights,
) -> S::Value {
    SearchProgram::compile(a, index, true)
        .aggregate::<S>(index, Some(weights))
        .0
}

/// Enumerate the valid assignments of one bag as flat rows over the sorted
/// bag order — the kernel replacement for the reference `bag_assignments`
/// helper (exposed for tests and ad-hoc callers).
pub fn bag_rows_indexed(
    a: &Structure,
    index: &StructureIndex,
    bag: &BTreeSet<Element>,
) -> (Vec<Element>, Vec<u32>) {
    let doms = QueryDomains::compile(a, index);
    let elems: Vec<Element> = bag.iter().copied().collect();
    let program = BagProgram::compile(a, &doms, &elems);
    let mut rows = Vec::new();
    if doms.satisfiable {
        run_program::<BoolSemiring>(
            &program,
            index,
            None,
            &[],
            &mut |row, _| {
                rows.extend_from_slice(row);
                false
            },
            true,
        );
    }
    (elems, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::{Cost, MaxWeightSemiring, MinCostSemiring};
    use cq_decomp::pathwidth::pathwidth_of_structure;
    use cq_decomp::treedepth::treedepth_exact;
    use cq_decomp::treewidth::treewidth_of_structure;
    use cq_graphs::gaifman_graph;
    use cq_structures::{
        count_homomorphisms_bruteforce, families, homomorphism_exists, homomorphisms_iter,
        star_expansion,
    };

    fn pairs() -> Vec<(Structure, Structure)> {
        let queries = [
            families::path(3),
            families::path(5),
            families::cycle(3),
            families::cycle(4),
            families::cycle(5),
            families::star(3),
            families::directed_path(4),
            families::grid(2, 2),
            families::complete_bipartite(2, 2),
        ];
        let targets = [
            families::path(4),
            families::cycle(5),
            families::cycle(6),
            families::clique(3),
            families::clique(4),
            families::grid(2, 3),
            families::directed_cycle(5),
        ];
        queries
            .iter()
            .flat_map(|a| targets.iter().map(move |b| (a.clone(), b.clone())))
            .collect()
    }

    /// Deterministic non-uniform weights for the differential tests.
    fn test_weights(b: &Structure) -> TupleWeights {
        TupleWeights::from_fn(b, |sym, i, _| {
            ((sym.index() as u64 + 1) * 7 + i as u64 * 3) % 11
        })
    }

    /// Brute-force weighted reference: the cost of every homomorphism via
    /// [`homomorphisms_iter`], independent of all kernel machinery.
    fn hom_costs(a: &Structure, b: &Structure, weights: &TupleWeights) -> Vec<u64> {
        let index = StructureIndex::new(b);
        homomorphisms_iter(a, b)
            .iter()
            .map(|h| {
                let mut cost = 0u64;
                for (sym, t) in a.all_tuples() {
                    let target = index
                        .vocabulary()
                        .id_of(a.vocabulary().name(sym))
                        .expect("hom exists");
                    let image: Vec<u32> = t.iter().map(|&e| h[e as usize] as u32).collect();
                    let row = index.row_of(target, &image).expect("hom maps tuples in");
                    cost += weights.get(target, row);
                }
                cost
            })
            .collect()
    }

    #[test]
    fn tree_dp_decision_and_count_match_bruteforce() {
        for (a, b) in pairs() {
            let (_, td) = treewidth_of_structure(&a);
            let index = StructureIndex::new(&b);
            let decide = hom_via_tree_decomposition_indexed(&a, &index, &td);
            assert_eq!(decide.exists, homomorphism_exists(&a, &b), "{a} -> {b}");
            let count = count_hom_via_tree_decomposition_indexed(&a, &index, &td);
            assert_eq!(
                count.count,
                count_homomorphisms_bruteforce(&a, &b),
                "{a} -> {b}"
            );
        }
    }

    #[test]
    fn staircase_sweep_matches_reference() {
        for (a, b) in pairs() {
            let (_, pd) = pathwidth_of_structure(&a);
            let stair = pd.normalize_staircase();
            let index = StructureIndex::new(&b);
            let kernel = hom_via_staircase_indexed(&a, &index, &stair);
            let reference = crate::pathdp::hom_via_staircase(&a, &b, &stair);
            assert_eq!(kernel.exists, reference.exists, "{a} -> {b}");
            assert_eq!(kernel.bags, reference.bags);
            assert_eq!(kernel.width, reference.width);
            // The kernel prefilter can only shrink the frontier.
            assert!(
                kernel.peak_frontier <= reference.peak_frontier,
                "kernel frontier grew on {a} -> {b}"
            );
        }
    }

    #[test]
    fn staircase_counting_matches_bruteforce() {
        // The generic sweep counts: every atom is checked exactly once
        // across the staircase, so the frontier values are partial-hom
        // counts.
        for (a, b) in pairs() {
            let (_, pd) = pathwidth_of_structure(&a);
            let stair = pd.normalize_staircase();
            let index = StructureIndex::new(&b);
            assert_eq!(
                count_via_staircase_indexed(&a, &index, &stair),
                count_homomorphisms_bruteforce(&a, &b),
                "{a} -> {b}"
            );
        }
    }

    #[test]
    fn forest_count_and_decide_match_bruteforce() {
        for (a, b) in pairs() {
            let g = gaifman_graph(&a);
            let (_, forest) = treedepth_exact(&g);
            let index = StructureIndex::new(&b);
            let count = count_with_forest_indexed(&a, &index, &forest);
            assert_eq!(
                count.count,
                count_homomorphisms_bruteforce(&a, &b),
                "{a} -> {b}"
            );
            let decide = hom_via_forest_indexed(&a, &index, &forest);
            assert_eq!(decide.exists, homomorphism_exists(&a, &b), "{a} -> {b}");
        }
    }

    #[test]
    fn answer_program_matches_bruteforce_projection() {
        use std::collections::BTreeMap;
        for (a, b) in pairs() {
            let (_, td) = treewidth_of_structure(&a);
            let index = StructureIndex::new(&b);
            let n = a.universe_size();
            let mut free_sets: Vec<Vec<Element>> = vec![Vec::new(), vec![0], (0..n).collect()];
            if n >= 2 {
                // Marked order ≠ element order: answer columns follow it.
                free_sets.push(vec![n - 1, 0]);
            }
            for free in free_sets {
                let program = AnswerProgram::compile(&a, &index, &td, &free);
                let expected = cq_structures::answers_bruteforce(&a, &b, &free);
                assert_eq!(
                    program.count_answers(&index) as usize,
                    expected.len(),
                    "count {a} -> {b} free {free:?}"
                );
                // The cursor reproduces the brute-force order exactly.
                let got: Vec<Vec<u32>> = program.cursor(&index).collect();
                let expected_u32: Vec<Vec<u32>> = expected
                    .iter()
                    .map(|r| r.iter().map(|&e| e as u32).collect())
                    .collect();
                assert_eq!(got, expected_u32, "cursor {a} -> {b} free {free:?}");
                // Per-answer extension counts under the counting semiring.
                let mut multiplicities: BTreeMap<Vec<u32>, u64> = BTreeMap::new();
                for h in homomorphisms_iter(&a, &b) {
                    let key: Vec<u32> = free.iter().map(|&i| h[i] as u32).collect();
                    *multiplicities.entry(key).or_insert(0) += 1;
                }
                let table = program.answer_table::<CheckedNatSemiring>(&index);
                assert_eq!(
                    table.len(),
                    multiplicities.len(),
                    "{a} -> {b} free {free:?}"
                );
                for (key, value) in table.iter() {
                    assert_eq!(
                        *value,
                        Nat::Finite(multiplicities[key]),
                        "multiplicity of {key:?} on {a} -> {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn answer_cursor_is_restartable_and_lazy() {
        // Consecutive cursors over the same program agree, and taking a
        // prefix of a cursor equals the prefix of the full enumeration (the
        // pagination contract: pages are windows of one deterministic
        // order).
        let a = families::path(4);
        let b = families::clique(4);
        let (_, td) = treewidth_of_structure(&a);
        let index = StructureIndex::new(&b);
        let program = AnswerProgram::compile(&a, &index, &td, &[0, 3]);
        let all: Vec<Vec<u32>> = program.cursor(&index).collect();
        assert!(!all.is_empty());
        for take in [0, 1, all.len() / 2, all.len(), all.len() + 7] {
            let page: Vec<Vec<u32>> = program.cursor(&index).take(take).collect();
            assert_eq!(page, all[..take.min(all.len())].to_vec());
        }
    }

    #[test]
    fn weighted_aggregates_match_bruteforce_on_every_tier() {
        // Min-cost and max-weight through all four program shapes against
        // the structure-agnostic reference enumeration, with non-uniform
        // deterministic weights.  Exercises weight ownership: the tree DP
        // shares tuples between bags and must emit each weight exactly
        // once.
        let mut compared = 0usize;
        for (a, b) in pairs() {
            let weights = test_weights(&b);
            let costs = hom_costs(&a, &b, &weights);
            let expected_min: Cost = costs.iter().copied().min();
            let expected_max: Cost = costs.iter().copied().max();
            let index = StructureIndex::new(&b);
            let (_, td) = treewidth_of_structure(&a);
            let (_, pd) = pathwidth_of_structure(&a);
            let stair = pd.normalize_staircase();
            let g = gaifman_graph(&a);
            let (_, forest) = treedepth_exact(&g);

            assert_eq!(
                aggregate_via_tree_decomposition_indexed::<MinCostSemiring>(
                    &a, &index, &td, &weights
                ),
                expected_min,
                "tree min-cost on {a} -> {b}"
            );
            assert_eq!(
                aggregate_via_tree_decomposition_indexed::<MaxWeightSemiring>(
                    &a, &index, &td, &weights
                ),
                expected_max,
                "tree max-weight on {a} -> {b}"
            );
            assert_eq!(
                aggregate_via_staircase_indexed::<MinCostSemiring>(&a, &index, &stair, &weights),
                expected_min,
                "stair min-cost on {a} -> {b}"
            );
            assert_eq!(
                aggregate_with_forest_indexed::<MinCostSemiring>(&a, &index, &forest, &weights),
                expected_min,
                "forest min-cost on {a} -> {b}"
            );
            assert_eq!(
                aggregate_with_forest_indexed::<MaxWeightSemiring>(&a, &index, &forest, &weights),
                expected_max,
                "forest max-weight on {a} -> {b}"
            );
            assert_eq!(
                aggregate_via_search_indexed::<MaxWeightSemiring>(&a, &index, &weights),
                expected_max,
                "search max-weight on {a} -> {b}"
            );
            compared += 6;
        }
        assert!(compared >= 300, "weighted corpus degenerated: {compared}");
    }

    #[test]
    fn astronomical_counts_surface_as_typed_overflow() {
        // #hom(P_12, K_64) = 64 · 63^11 ≈ 6.2e21 > u64::MAX — the tree DP
        // and the staircase sweep must report Overflow, not a clamped or
        // wrapped number.
        let p12 = families::path(12);
        let k64 = families::clique(64);
        let index = StructureIndex::new(&k64);
        let (_, td) = treewidth_of_structure(&p12);
        let run = count_hom_via_tree_decomposition_indexed(&p12, &index, &td);
        assert_eq!(run.count, Nat::Overflow);
        assert!(run.exists, "overflowed counts still certify existence");
        let (_, pd) = pathwidth_of_structure(&p12);
        assert_eq!(
            count_via_staircase_indexed(&p12, &index, &pd.normalize_staircase()),
            Nat::Overflow
        );

        // #hom(K_{1,11}, K_100) = 100 · 99^11 ≈ 9e23 through the forest
        // sum–product (11 independent leaves — the per-root product is
        // where the old kernel silently saturated).
        let star = families::star(11);
        let k100 = families::clique(100);
        let star_index = StructureIndex::new(&k100);
        let g = gaifman_graph(&star);
        let (_, forest) = treedepth_exact(&g);
        let run = count_with_forest_indexed(&star, &star_index, &forest);
        assert_eq!(run.count, Nat::Overflow);
        assert!(run.exists);

        // Counts just inside u64 range stay exact: #hom(P_2, K_n) = n(n-1).
        let p2 = families::path(2);
        let (_, td2) = treewidth_of_structure(&p2);
        assert_eq!(
            count_hom_via_tree_decomposition_indexed(&p2, &index, &td2).count,
            64 * 63
        );
    }

    #[test]
    fn group_table_merges_without_per_row_allocation_semantics() {
        let mut t: GroupTable<u64> = GroupTable::with_capacity(2, 2);
        // Force several growths and collisions.
        for i in 0..100u32 {
            t.merge(&[i % 10, i % 3], u64::from(i), |a, v| *a += v);
        }
        let mut total = 0u64;
        let mut groups = 0usize;
        for (key, v) in t.iter() {
            assert_eq!(key.len(), 2);
            total += *v;
            groups += 1;
        }
        assert_eq!(groups, t.len());
        assert_eq!(total, (0..100u64).sum::<u64>());
        assert!(t.get(&[0, 0]).is_some());
        assert!(t.get(&[9, 9]).is_none());
        // Stride-0 tables hold exactly one group (the empty key).
        let mut empty: GroupTable<u64> = GroupTable::with_capacity(0, 4);
        empty.merge(&[], 3, |a, v| *a += v);
        empty.merge(&[], 4, |a, v| *a += v);
        assert_eq!(empty.len(), 1);
        assert_eq!(empty.get(&[]), Some(&7));
    }

    #[test]
    fn whole_query_search_matches_reference() {
        for (a, b) in pairs() {
            let index = StructureIndex::new(&b);
            for fail_first in [true, false] {
                let (witness, _) = find_hom_indexed(&a, &index, fail_first);
                assert_eq!(witness.is_some(), homomorphism_exists(&a, &b), "{a} -> {b}");
                if let Some(h) = witness {
                    assert!(cq_structures::is_homomorphism(&a, &b, &h), "{a} -> {b}");
                }
            }
        }
    }

    #[test]
    fn search_aggregate_counts_like_bruteforce() {
        for (a, b) in pairs().into_iter().take(20) {
            let index = StructureIndex::new(&b);
            let program = SearchProgram::compile(&a, &index, true);
            let (count, _) = program.aggregate::<CheckedNatSemiring>(&index, None);
            assert_eq!(count, count_homomorphisms_bruteforce(&a, &b), "{a} -> {b}");
        }
    }

    #[test]
    fn colored_instances_prefilter_to_singletons() {
        let q = star_expansion(&families::path(4));
        let index = StructureIndex::new(&q);
        let doms = QueryDomains::compile(&q, &index);
        assert!(doms.satisfiable());
        for e in 0..q.universe_size() {
            assert_eq!(doms.domain(e), &[e as u32], "colour pins element {e}");
        }
        let (witness, stats) = find_hom_indexed(&q, &index, true);
        assert!(witness.is_some());
        assert_eq!(stats.assignments, q.universe_size() as u64);
    }

    #[test]
    fn missing_target_symbol_is_unsatisfiable() {
        let q = star_expansion(&families::path(3));
        let plain = families::path(5);
        let index = StructureIndex::new(&plain);
        let doms = QueryDomains::compile(&q, &index);
        assert!(!doms.satisfiable());
        let (_, td) = treewidth_of_structure(&q);
        assert!(!hom_via_tree_decomposition_indexed(&q, &index, &td).exists);
        assert_eq!(
            count_hom_via_tree_decomposition_indexed(&q, &index, &td).count,
            0
        );
        let (_, pd) = pathwidth_of_structure(&q);
        assert!(!hom_via_staircase_indexed(&q, &index, &pd.normalize_staircase()).exists);
        let g = gaifman_graph(&q);
        let (_, forest) = treedepth_exact(&g);
        assert_eq!(count_with_forest_indexed(&q, &index, &forest).count, 0);
        let (witness, stats) = find_hom_indexed(&q, &index, true);
        assert!(witness.is_none());
        assert!(stats.decided_by_prefilter);
    }

    #[test]
    fn trivial_decomposition_reduces_to_prefiltered_bruteforce() {
        let a = families::cycle(4);
        let b = families::cycle(6);
        let td = TreeDecomposition::trivial(&gaifman_graph(&a));
        let index = StructureIndex::new(&b);
        assert!(hom_via_tree_decomposition_indexed(&a, &index, &td).exists);
        assert_eq!(
            count_hom_via_tree_decomposition_indexed(&a, &index, &td).count,
            count_homomorphisms_bruteforce(&a, &b)
        );
    }

    #[test]
    fn bag_rows_match_reference_bag_assignments() {
        let a = families::cycle(5);
        let b = families::clique(3);
        let index = StructureIndex::new(&b);
        let bag: BTreeSet<Element> = [0, 1, 2].into_iter().collect();
        let (elems, rows) = bag_rows_indexed(&a, &index, &bag);
        assert_eq!(elems, vec![0, 1, 2]);
        let stride = elems.len();
        let mut kernel_rows: Vec<Vec<u32>> = rows.chunks(stride).map(|r| r.to_vec()).collect();
        kernel_rows.sort();
        let reference = crate::treedec::reference_bag_assignments(&a, &b, &bag);
        let mut reference_rows: Vec<Vec<u32>> = reference
            .iter()
            .map(|h| elems.iter().map(|&e| h.get(e).unwrap() as u32).collect())
            .collect();
        reference_rows.sort();
        assert_eq!(kernel_rows, reference_rows);
    }

    #[test]
    fn disconnected_queries_multiply_components() {
        // Two disjoint edges into K3: 6 * 6 = 36 homomorphisms; the
        // tree decomposition has two components joined arbitrarily, so the
        // empty-separator group-sum path is exercised.
        let (two_edges, _) =
            cq_structures::disjoint_union(&[&families::path(2), &families::path(2)]).unwrap();
        let k3 = families::clique(3);
        let index = StructureIndex::new(&k3);
        let (_, td) = treewidth_of_structure(&two_edges);
        assert_eq!(
            count_hom_via_tree_decomposition_indexed(&two_edges, &index, &td).count,
            count_homomorphisms_bruteforce(&two_edges, &k3)
        );
        assert!(hom_via_tree_decomposition_indexed(&two_edges, &index, &td).exists);
        // Weighted across components: min cost adds over the two edges.
        let weights = test_weights(&k3);
        let costs = hom_costs(&two_edges, &k3, &weights);
        assert_eq!(
            aggregate_via_tree_decomposition_indexed::<MinCostSemiring>(
                &two_edges, &index, &td, &weights
            ),
            costs.iter().copied().min()
        );
    }

    #[test]
    fn compiled_programs_are_reusable_and_meter_compilations() {
        let a = families::cycle(4);
        let b = families::cycle(6);
        let index = StructureIndex::new(&b);
        let (_, td) = treewidth_of_structure(&a);
        let (_, pd) = pathwidth_of_structure(&a);
        let stair = pd.normalize_staircase();
        let g = gaifman_graph(&a);
        let (_, forest) = treedepth_exact(&g);

        let tree = TreeDpProgram::compile(&a, &index, &td);
        let stairp = StairProgram::compile(&a, &index, &stair);
        let forestp = ForestProgram::compile(&a, &index, &forest);
        let search = SearchProgram::compile(&a, &index, true);
        assert_eq!(tree.index_id(), index.id());
        assert_eq!(stairp.index_id(), index.id());
        assert_eq!(forestp.index_id(), index.id());
        assert_eq!(search.index_id(), index.id());

        // Running a compiled program does not recompile: repeat runs are
        // pure reads of the program and return identical results.  (The
        // counter is process-global and other tests compile concurrently,
        // so only monotone lower bounds are race-safe to assert here; the
        // exact no-recompile equality is asserted by the single-threaded
        // E18 bench.)  One compiled program serves every semiring.
        let before = program_compilation_count();
        let expected = count_homomorphisms_bruteforce(&a, &b);
        let weights = TupleWeights::uniform(&b, 2);
        for _ in 0..3 {
            assert!(tree.decide(&index).exists);
            assert_eq!(tree.count(&index).count, expected);
            // Every hom maps each query tuple (symmetric edges count
            // twice) onto a weight-2 tuple.
            assert_eq!(
                tree.eval::<MinCostSemiring>(&index, Some(&weights)).0,
                Some(2 * a.tuple_count() as u64)
            );
            assert!(stairp.run(&index).exists);
            assert_eq!(stairp.count(&index), expected);
            assert_eq!(forestp.count(&index).count, expected);
            assert!(forestp.decide(&index).exists);
            assert!(search.run(&index).0.is_some());
        }

        // Compiling does meter.
        let _again = TreeDpProgram::compile(&a, &index, &td);
        assert!(program_compilation_count() > before);
    }

    #[test]
    fn driver_iteration_matches_bruteforce_on_selective_targets() {
        // Directed path into a large directed cycle: every element's
        // posting list has length 1 against full-size prefilter domains,
        // so the posting-list driver carries the whole enumeration.
        let a = families::directed_path(4);
        let b = families::directed_cycle(20);
        let index = StructureIndex::new(&b);
        let (_, td) = treewidth_of_structure(&a);
        assert_eq!(
            count_hom_via_tree_decomposition_indexed(&a, &index, &td).count,
            count_homomorphisms_bruteforce(&a, &b)
        );
        let (_, pd) = pathwidth_of_structure(&a);
        assert!(hom_via_staircase_indexed(&a, &index, &pd.normalize_staircase()).exists);
        // A star query: the centre is bound first, the leaves all drive
        // off the centre's posting list.
        let star = families::star(4);
        let k4 = families::clique(4);
        let k4_index = StructureIndex::new(&k4);
        let (_, td_star) = treewidth_of_structure(&star);
        assert_eq!(
            count_hom_via_tree_decomposition_indexed(&star, &k4_index, &td_star).count,
            count_homomorphisms_bruteforce(&star, &k4)
        );
    }

    /// Drive one query/target pair through scripted mutation rounds,
    /// checking the retained count and decision against brute force after
    /// every round.  Mirrors the engine's epoch discipline: a domain-epoch
    /// bump recompiles the program and drops the retained states.
    fn check_retained_rounds(a: &Structure, b: &Structure) {
        let (_, td) = treewidth_of_structure(a);
        let mut index = StructureIndex::new(b);
        let Some(sym) = index
            .vocabulary()
            .ids()
            .find(|&s| !index.structure().relation(s).is_empty())
        else {
            return;
        };
        let mut program = TreeDpProgram::compile(a, &index, &td);
        let mut epoch = index.domain_epoch();
        let mut count_state = None;
        let mut bool_state = None;

        let first_row = index.structure().relation(sym).row(0).to_vec();
        let arity = index.vocabulary().arity(sym);
        let n = index.universe_size() as u32;
        // A tuple not currently present (cyclic shift of the first row's
        // successors); skip the insert round if the relation is complete.
        let fresh = (0..n)
            .flat_map(|u| (0..n).map(move |v| vec![u, v]))
            .find(|t| {
                let wide: Vec<usize> = t.iter().map(|&x| x as usize).collect();
                t.len() == arity && !index.structure().relation(sym).contains(&wide)
            });
        let mut rounds: Vec<RoundScript> = vec![
            RoundScript::Delete(first_row.clone()),
            RoundScript::Insert(first_row.clone()),
            RoundScript::DeleteInsertSame(first_row.clone()),
        ];
        if let Some(t) = fresh {
            rounds.push(RoundScript::Insert(t));
        }
        for (i, round) in rounds.iter().enumerate() {
            let mut batch = cq_structures::DeltaBatch::new();
            match round {
                RoundScript::Delete(t) => {
                    batch.delete(sym, t.clone());
                }
                RoundScript::Insert(t) => {
                    batch.insert(sym, t.clone());
                }
                RoundScript::DeleteInsertSame(t) => {
                    batch.delete(sym, t.clone()).insert(sym, t.clone());
                }
            }
            index.apply_delta(&batch).expect("valid scripted batch");
            if index.domain_epoch() != epoch {
                program = TreeDpProgram::compile(a, &index, &td);
                epoch = index.domain_epoch();
                count_state = None;
                bool_state = None;
            }
            let (count, _) = program.eval_retained::<CheckedNatSemiring>(&index, &mut count_state);
            let (exists, _) = program.eval_retained::<BoolSemiring>(&index, &mut bool_state);
            let expected = count_homomorphisms_bruteforce(a, index.structure());
            assert_eq!(count, expected, "{a} -> {b}, round {i}");
            assert_eq!(
                exists,
                homomorphism_exists(a, index.structure()),
                "{a} -> {b}, round {i}"
            );
        }
    }

    enum RoundScript {
        Delete(Vec<u32>),
        Insert(Vec<u32>),
        DeleteInsertSame(Vec<u32>),
    }

    #[test]
    fn retained_eval_agrees_with_bruteforce_across_mutation_rounds() {
        for (a, b) in pairs() {
            check_retained_rounds(&a, &b);
        }
    }

    /// A two-symbol query `x -R-> y -S-> z` so a round touching only one
    /// relation leaves the other bag's retained table untouched: the clean
    /// bag is reused, the dirty single-constraint bag is patched in place
    /// under the invertible counting semiring (and recomputed, never
    /// patched, under Bool).
    #[test]
    fn retained_eval_reuses_clean_bags_and_patches_dirty_ones() {
        let mut voc = cq_structures::Vocabulary::new();
        let r = voc.add("R", 2).unwrap();
        let s = voc.add("S", 2).unwrap();
        let mut a = Structure::new(voc.clone(), 3).unwrap();
        a.add_tuple(r, vec![0, 1]).unwrap();
        a.add_tuple(s, vec![1, 2]).unwrap();

        // Dense enough that the scripted churn never empties (or grows) a
        // position domain — the domain epoch must stay put.
        let mut b = Structure::new(voc, 6).unwrap();
        for (u, v) in [(0, 1), (1, 2), (2, 0), (3, 4), (0, 3), (1, 4), (2, 1)] {
            b.add_tuple(r, vec![u, v]).unwrap();
        }
        for (u, v) in [(1, 3), (2, 4), (0, 5), (4, 5), (4, 3)] {
            b.add_tuple(s, vec![u, v]).unwrap();
        }
        let (_, td) = treewidth_of_structure(&a);
        let mut index = StructureIndex::new(&b);
        let br = index.vocabulary().id_of("R").unwrap();
        let program = TreeDpProgram::compile(&a, &index, &td);
        let mut count_state = None;
        let mut bool_state = None;
        let (_, build) = program.eval_retained::<CheckedNatSemiring>(&index, &mut count_state);
        assert!(build.full_rebuild);
        program.eval_retained::<BoolSemiring>(&index, &mut bool_state);

        // Refreshing with no pending mutations reuses everything.
        let (_, idle) = program.eval_retained::<CheckedNatSemiring>(&index, &mut count_state);
        assert!(!idle.full_rebuild);
        assert_eq!(idle.bags_recomputed + idle.bags_patched, 0);

        // Delete-and-reinsert the same R tuple: the dirty R bag is patched,
        // the patch detects that nothing moved, and the other bag is
        // reused no matter which one is the root.
        let mut batch = cq_structures::DeltaBatch::new();
        batch.delete(br, vec![0, 1]).insert(br, vec![0, 1]);
        index.apply_delta(&batch).unwrap();
        assert_eq!(index.domain_epoch(), 0, "churn stays within baked domains");
        let n_bags = program.bags.len();
        let (count, stats) = program.eval_retained::<CheckedNatSemiring>(&index, &mut count_state);
        assert_eq!(count, count_homomorphisms_bruteforce(&a, index.structure()));
        assert!(!stats.full_rebuild);
        assert_eq!(
            stats.bags_patched, 1,
            "the single-R-constraint bag must be patched in place: {stats:?}"
        );
        assert_eq!(
            stats.bags_recomputed, 0,
            "a cancelled round must not propagate"
        );
        assert_eq!(stats.bags_reused, n_bags - 1);

        let (exists, bstats) = program.eval_retained::<BoolSemiring>(&index, &mut bool_state);
        assert_eq!(exists, homomorphism_exists(&a, index.structure()));
        assert_eq!(
            bstats.bags_patched, 0,
            "Bool is not invertible — dirty bags recompute per key"
        );

        // Genuine R churn: still patched (or recomputed if it cascades),
        // still exact.
        let mut batch = cq_structures::DeltaBatch::new();
        batch.delete(br, vec![0, 1]).insert(br, vec![0, 2]);
        index.apply_delta(&batch).unwrap();
        assert_eq!(index.domain_epoch(), 0);
        let (count, stats) = program.eval_retained::<CheckedNatSemiring>(&index, &mut count_state);
        assert_eq!(count, count_homomorphisms_bruteforce(&a, index.structure()));
        assert!(!stats.full_rebuild);
        assert!(stats.bags_patched >= 1, "{stats:?}");

        // An S round dirties the S bag and leaves the R bag clean unless
        // the S table changed.
        let bs = index.vocabulary().id_of("S").unwrap();
        let mut batch = cq_structures::DeltaBatch::new();
        batch.delete(bs, vec![4, 5]).insert(bs, vec![4, 3]);
        index.apply_delta(&batch).unwrap();
        let (count, _) = program.eval_retained::<CheckedNatSemiring>(&index, &mut count_state);
        assert_eq!(count, count_homomorphisms_bruteforce(&a, index.structure()));
        let (exists, _) = program.eval_retained::<BoolSemiring>(&index, &mut bool_state);
        assert_eq!(exists, homomorphism_exists(&a, index.structure()));
    }

    /// Outrunning the index's bounded mutation log forces a full rebuild,
    /// which must still agree with brute force.
    #[test]
    fn retained_eval_rebuilds_after_log_gap() {
        let a = families::directed_path(3);
        let b = families::directed_cycle(8);
        let (_, td) = treewidth_of_structure(&a);
        let mut index = StructureIndex::new(&b);
        let e = index.vocabulary().id_of("E").unwrap();
        let program = TreeDpProgram::compile(&a, &index, &td);
        let mut state = None;
        program.eval_retained::<CheckedNatSemiring>(&index, &mut state);
        // More rounds than the log retains, without refreshing in between.
        for _ in 0..40 {
            let mut batch = cq_structures::DeltaBatch::new();
            batch.delete(e, vec![0, 1]).insert(e, vec![0, 1]);
            index.apply_delta(&batch).unwrap();
        }
        let (count, stats) = program.eval_retained::<CheckedNatSemiring>(&index, &mut state);
        assert!(stats.full_rebuild, "log gap must trigger a rebuild");
        assert_eq!(count, count_homomorphisms_bruteforce(&a, index.structure()));
    }
}
