//! A configurable backtracking homomorphism solver — the baseline against
//! which the structure-exploiting algorithms are compared, and the engine
//! used on the parameter-sized side of reductions.
//!
//! Compared to the reference search in `cq_structures::homomorphism` this
//! solver maintains explicit domains, optionally runs arc consistency before
//! (and, optionally, during) the search, and reports search statistics so
//! that the ablation experiment (E12) can quantify the effect of propagation.

use crate::domains::{arc_consistency, initial_domains, Domains};
use cq_structures::{Element, Structure};

/// Tunable knobs of the [`BacktrackSolver`] (ablation experiment E12).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BacktrackConfig {
    /// Run arc consistency on the initial domains before searching.
    pub preprocess_arc_consistency: bool,
    /// Re-run arc consistency after every assignment (full maintenance).
    pub maintain_arc_consistency: bool,
    /// Order variables by increasing domain size (fail-first) instead of by
    /// index.
    pub fail_first_ordering: bool,
}

impl Default for BacktrackConfig {
    fn default() -> Self {
        BacktrackConfig {
            preprocess_arc_consistency: true,
            maintain_arc_consistency: false,
            fail_first_ordering: true,
        }
    }
}

impl cq_structures::codec::Encode for BacktrackConfig {
    fn encode(&self, out: &mut Vec<u8>) {
        self.preprocess_arc_consistency.encode(out);
        self.maintain_arc_consistency.encode(out);
        self.fail_first_ordering.encode(out);
    }
}

impl cq_structures::codec::Decode for BacktrackConfig {
    fn decode(
        r: &mut cq_structures::codec::Reader<'_>,
    ) -> Result<Self, cq_structures::codec::DecodeError> {
        Ok(BacktrackConfig {
            preprocess_arc_consistency: bool::decode(r)?,
            maintain_arc_consistency: bool::decode(r)?,
            fail_first_ordering: bool::decode(r)?,
        })
    }
}

/// Statistics of one solver run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BacktrackStats {
    /// Number of assignments tried.
    pub assignments: u64,
    /// Number of dead ends (backtracks).
    pub backtracks: u64,
    /// Whether the instance was decided purely by propagation.
    pub decided_by_propagation: bool,
}

/// The backtracking solver.
#[derive(Debug, Clone, Copy, Default)]
pub struct BacktrackSolver {
    /// Configuration knobs.
    pub config: BacktrackConfig,
}

impl BacktrackSolver {
    /// A solver with the given configuration.
    pub fn with_config(config: BacktrackConfig) -> Self {
        BacktrackSolver { config }
    }

    /// Find a homomorphism from `a` to `b`, if one exists, with statistics.
    pub fn solve(&self, a: &Structure, b: &Structure) -> (Option<Vec<Element>>, BacktrackStats) {
        let mut stats = BacktrackStats::default();
        let mut domains = initial_domains(a, b);
        if self.config.preprocess_arc_consistency && !arc_consistency(a, b, &mut domains) {
            stats.decided_by_propagation = true;
            return (None, stats);
        }
        if domains.iter().any(|d| d.is_empty()) {
            stats.decided_by_propagation = true;
            return (None, stats);
        }
        let mut assignment: Vec<Option<Element>> = vec![None; a.universe_size()];
        let found = self.search(a, b, &domains, &mut assignment, &mut stats);
        (
            found.then(|| assignment.iter().map(|x| x.unwrap()).collect()),
            stats,
        )
    }

    /// Does a homomorphism exist?
    pub fn exists(&self, a: &Structure, b: &Structure) -> bool {
        self.solve(a, b).0.is_some()
    }

    fn pick_variable(&self, domains: &Domains, assignment: &[Option<Element>]) -> Option<usize> {
        let unassigned = (0..assignment.len()).filter(|&v| assignment[v].is_none());
        if self.config.fail_first_ordering {
            unassigned.min_by_key(|&v| domains[v].len())
        } else {
            unassigned.min()
        }
    }

    fn search(
        &self,
        a: &Structure,
        b: &Structure,
        domains: &Domains,
        assignment: &mut Vec<Option<Element>>,
        stats: &mut BacktrackStats,
    ) -> bool {
        let Some(var) = self.pick_variable(domains, assignment) else {
            return true;
        };
        for &candidate in &domains[var] {
            stats.assignments += 1;
            assignment[var] = Some(candidate);
            if self.locally_consistent(a, b, assignment, var) {
                let proceed = if self.config.maintain_arc_consistency {
                    // Restrict domains to the current assignment and re-propagate.
                    let mut narrowed = domains.clone();
                    for (v, img) in assignment.iter().enumerate() {
                        if let Some(img) = img {
                            narrowed[v] = [*img].into_iter().collect();
                        }
                    }
                    if arc_consistency(a, b, &mut narrowed) {
                        self.search(a, b, &narrowed, assignment, stats)
                    } else {
                        false
                    }
                } else {
                    self.search(a, b, domains, assignment, stats)
                };
                if proceed {
                    return true;
                }
            }
            assignment[var] = None;
            stats.backtracks += 1;
        }
        false
    }

    /// Check all tuples of `a` that involve `var` and are fully assigned.
    fn locally_consistent(
        &self,
        a: &Structure,
        b: &Structure,
        assignment: &[Option<Element>],
        var: usize,
    ) -> bool {
        for (sym, t) in a.all_tuples() {
            if !t.contains(&(var as u32)) {
                continue;
            }
            let mapped: Option<Vec<Element>> = t.iter().map(|&e| assignment[e as usize]).collect();
            if let Some(mapped) = mapped {
                let Some(bsym) = b.vocabulary().id_of(a.vocabulary().name(sym)) else {
                    return false;
                };
                if !b.contains(bsym, &mapped) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_structures::{families, homomorphism_exists, is_homomorphism, star_expansion};

    fn agree_with_reference(a: &Structure, b: &Structure) {
        let expected = homomorphism_exists(a, b);
        for config in [
            BacktrackConfig::default(),
            BacktrackConfig {
                preprocess_arc_consistency: false,
                maintain_arc_consistency: false,
                fail_first_ordering: false,
            },
            BacktrackConfig {
                preprocess_arc_consistency: true,
                maintain_arc_consistency: true,
                fail_first_ordering: true,
            },
        ] {
            let solver = BacktrackSolver::with_config(config);
            let (result, _) = solver.solve(a, b);
            assert_eq!(result.is_some(), expected, "config {config:?}");
            if let Some(h) = result {
                assert!(is_homomorphism(a, b, &h));
            }
        }
    }

    #[test]
    fn agrees_with_reference_on_standard_instances() {
        let queries = [
            families::path(4),
            families::cycle(3),
            families::cycle(4),
            families::cycle(5),
            families::star(3),
            families::clique(3),
            families::directed_path(3),
            families::grid(2, 2),
        ];
        let targets = [
            families::path(5),
            families::cycle(6),
            families::cycle(5),
            families::clique(3),
            families::clique(4),
            families::grid(3, 3),
            families::directed_cycle(4),
        ];
        for a in &queries {
            for b in &targets {
                if a.vocabulary().same_symbols(b.vocabulary()) {
                    agree_with_reference(a, b);
                }
            }
        }
    }

    #[test]
    fn propagation_decides_colored_instances_without_search() {
        // A* -> A* with odd-cycle colours: AC pins every domain to a
        // singleton, so the answer needs no backtracking.
        let a = star_expansion(&families::cycle(5));
        let solver = BacktrackSolver::default();
        let (result, stats) = solver.solve(&a, &a);
        assert!(result.is_some());
        assert_eq!(stats.backtracks, 0);
    }

    #[test]
    fn propagation_refutes_impossible_colored_instances() {
        // Triangle* into a colour-restricted edge: refuted by propagation.
        let tri = star_expansion(&families::cycle(3));
        let target = cq_structures::ops::colored_target(3, &families::path(2), |_| vec![0, 1]);
        let solver = BacktrackSolver::default();
        let (result, stats) = solver.solve(&tri, &target);
        assert!(result.is_none());
        assert!(stats.decided_by_propagation || stats.backtracks > 0);
    }

    #[test]
    fn ablation_propagation_reduces_search_effort() {
        // On an unsatisfiable odd-cycle instance, the solver with AC explores
        // no more assignments than the one without.
        let a = families::cycle(7);
        let b = families::path(2);
        let with_ac = BacktrackSolver::default().solve(&a, &b).1;
        let without_ac = BacktrackSolver::with_config(BacktrackConfig {
            preprocess_arc_consistency: false,
            maintain_arc_consistency: false,
            fail_first_ordering: true,
        })
        .solve(&a, &b)
        .1;
        assert!(with_ac.assignments <= without_ac.assignments);
    }

    #[test]
    fn stats_count_assignments() {
        let a = families::path(3);
        let b = families::path(4);
        let (res, stats) = BacktrackSolver::default().solve(&a, &b);
        assert!(res.is_some());
        assert!(stats.assignments >= 3);
    }
}
