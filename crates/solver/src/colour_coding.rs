//! Colour coding (Lemma 3.14 / Lemma 3.15): the derandomizable hash family
//! `h_{p,q}` and colour-coding embedding algorithms for forest-shaped
//! queries.
//!
//! Lemma 3.14: for every sufficiently large `n`, every `k`-element subset
//! `X ⊆ [n]` admits a prime `p < k² log n` and `q < p` such that
//! `h_{p,q}(m) = (q·m mod p) mod k²` is injective on `X`.  The paper uses
//! the family inside machines (guess `(p, q)`, Lemma 4.5) and inside the
//! reduction `p-EMB(A) ≤ p-HOM(A*)` for connected `A` (Lemma 3.15 — that
//! reduction itself is implemented in `cq-reductions`).
//!
//! For a *deterministic, laptop-scale* embedding solver we additionally
//! provide the classic colour-coding dynamic program (Alon–Yuster–Zwick) for
//! queries whose Gaifman graph is a forest: colour the host with `k = |A|`
//! colours, search for a *colourful* homomorphism (which is automatically
//! injective), and repeat over independent colourings.  "Yes" answers are
//! certified by an explicit embedding; "no" answers are one-sided Monte
//! Carlo with error probability at most `(1 - k!/k^k)^trials` — the
//! substitution is documented in DESIGN.md and the experiments always verify
//! yes-instances exactly.

use cq_graphs::{gaifman_graph, traversal, Graph};
use cq_structures::{Element, Structure};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Is `p` prime (trial division; the primes involved are `< k² log n`).
pub fn is_prime(p: usize) -> bool {
    if p < 2 {
        return false;
    }
    let mut d = 2;
    while d * d <= p {
        if p.is_multiple_of(d) {
            return false;
        }
        d += 1;
    }
    true
}

/// The hash function `h_{p,q}(m) = (q·m mod p) mod k²` of Lemma 3.14,
/// evaluated on every `m ∈ [n]` (1-based in the paper; we use `0..n`).
pub fn hash_coloring(p: usize, q: usize, k: usize, n: usize) -> Vec<usize> {
    (0..n).map(|m| (q * (m + 1) % p) % (k * k)).collect()
}

/// Search for `(p, q)` with `q < p < k²·log2(n)` and `p` prime making
/// `h_{p,q}` injective on the given subset (Lemma 3.14).  Returns `None`
/// only when no such pair exists in the range (which the lemma rules out for
/// sufficiently large `n`).
pub fn find_injective_hash(subset: &[usize], k: usize, n: usize) -> Option<(usize, usize)> {
    let log_n = (usize::BITS - n.max(2).leading_zeros()) as usize;
    let bound = (k * k * log_n).max(subset.len() + 2);
    for p in 2..bound {
        if !is_prime(p) {
            continue;
        }
        for q in 1..p {
            let mut seen = std::collections::BTreeSet::new();
            if subset
                .iter()
                .all(|&m| seen.insert((q * (m + 1) % p) % (k * k)))
            {
                return Some((p, q));
            }
        }
    }
    None
}

/// Configuration of the colour-coding embedding search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColorCodingConfig {
    /// Number of independent random colourings to try.
    pub trials: usize,
    /// RNG seed (the experiments are deterministic given the seed).
    pub seed: u64,
}

impl Default for ColorCodingConfig {
    fn default() -> Self {
        ColorCodingConfig {
            trials: 200,
            seed: 0xC0FFEE,
        }
    }
}

impl ColorCodingConfig {
    /// A number of trials giving error probability below `2^-20` for queries
    /// of size `k` (using the `e^k` bound on `k^k/k!`).
    pub fn for_query_size(k: usize) -> Self {
        let trials = ((k as f64).exp() * 14.0).ceil() as usize;
        ColorCodingConfig {
            trials: trials.max(50),
            seed: 0xC0FFEE,
        }
    }
}

/// Search for an embedding of a forest-shaped query `a` into `b` by colour
/// coding.  Returns an explicit embedding when one is found (verified), or
/// `None` when no trial succeeded (one-sided error: a false "no" has
/// probability at most `(1 - k!/k^k)^trials`).
///
/// Panics when the Gaifman graph of `a` is not a forest — the dynamic
/// program is only complete for forests (which covers the paper's
/// `p-EMB(P)`, `p-EMB(T)` experiments; cycles are handled by
/// [`crate::problems::has_k_cycle`]).
pub fn embedding_via_colour_coding(
    a: &Structure,
    b: &Structure,
    config: ColorCodingConfig,
) -> Option<Vec<Element>> {
    let ga = gaifman_graph(a);
    assert!(
        traversal::is_forest(&ga),
        "colour-coding embedding requires a forest-shaped query"
    );
    let k = a.universe_size();
    if k > b.universe_size() {
        return None;
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    for _ in 0..config.trials {
        let colouring: Vec<usize> = (0..b.universe_size())
            .map(|_| rng.gen_range(0..k))
            .collect();
        if let Some(embedding) = colourful_forest_embedding(a, b, &ga, &colouring) {
            debug_assert!(cq_structures::is_homomorphism(a, b, &embedding));
            debug_assert!({
                let mut seen = std::collections::BTreeSet::new();
                embedding.iter().all(|&x| seen.insert(x))
            });
            return Some(embedding);
        }
    }
    None
}

/// Find a *colourful* homomorphism (distinct colours on all images, hence an
/// embedding) of a forest-shaped query by DP over each tree of the forest.
///
/// The DP state is (query node, host vertex, set of colours used in the
/// query subtree); colour sets are `u32` bitmasks (queries have ≤ 22
/// elements in this repository, well below 32).
fn colourful_forest_embedding(
    a: &Structure,
    b: &Structure,
    ga: &Graph,
    colouring: &[usize],
) -> Option<Vec<Element>> {
    let k = a.universe_size();
    assert!(k <= 32, "colour-coding DP uses u32 colour masks");
    let components = traversal::connected_components(ga);
    let mut assignment: Vec<Option<Element>> = vec![None; k];
    // Colours already consumed by earlier components.
    let mut used_global: u32 = 0;

    for comp in components {
        let root = comp[0];
        // children/parent structure of a DFS tree of the component.
        let mut parent: Vec<Option<usize>> = vec![None; k];
        let mut order = Vec::new();
        let mut visited = vec![false; k];
        let mut stack = vec![root];
        visited[root] = true;
        while let Some(v) = stack.pop() {
            order.push(v);
            for w in ga.neighbors(v) {
                if !visited[w] {
                    visited[w] = true;
                    parent[w] = Some(v);
                    stack.push(w);
                }
            }
        }
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); k];
        for &v in &order {
            if let Some(p) = parent[v] {
                children[p].push(v);
            }
        }

        // table[v][host] = list of (colour mask, witness: map child -> (host, mask))
        // To keep the implementation simple and exact we store for every
        // (query node, host) the set of achievable masks with one witness per
        // mask.
        type Witness = BTreeMap<u32, Vec<(usize, usize, u32)>>; // mask -> [(child, host, child_mask)]
        let mut table: Vec<Vec<Witness>> = vec![vec![BTreeMap::new(); b.universe_size()]; k];

        for &v in order.iter().rev() {
            for host in b.universe() {
                if !host_ok(a, b, v, host, parent[v], &assignment) {
                    continue;
                }
                let own_mask = 1u32 << colouring[host];
                if own_mask & used_global != 0 {
                    continue;
                }
                // Combine children: each child contributes a disjoint mask.
                let mut partial: BTreeMap<u32, Vec<(usize, usize, u32)>> =
                    [(own_mask, Vec::new())].into_iter().collect();
                let mut dead = false;
                for &c in &children[v] {
                    let mut next: BTreeMap<u32, Vec<(usize, usize, u32)>> = BTreeMap::new();
                    for (mask, wit) in &partial {
                        for chost in b.universe() {
                            if !edge_ok(a, b, v, host, c, chost) {
                                continue;
                            }
                            for cmask in table[c][chost].keys() {
                                if cmask & mask != 0 {
                                    continue;
                                }
                                let combined = mask | cmask;
                                next.entry(combined).or_insert_with(|| {
                                    let mut w = wit.clone();
                                    w.push((c, chost, *cmask));
                                    w
                                });
                            }
                        }
                    }
                    partial = next;
                    if partial.is_empty() {
                        dead = true;
                        break;
                    }
                }
                if !dead {
                    table[v][host] = partial;
                }
            }
        }

        // Pick any root completion covering |comp| distinct colours.
        let needed = comp.len() as u32;
        let mut found = None;
        'search: for host in b.universe() {
            for mask in table[root][host].keys() {
                if mask.count_ones() == needed {
                    found = Some((host, *mask));
                    break 'search;
                }
            }
        }
        let (root_host, root_mask) = found?;
        used_global |= root_mask;
        // Reconstruct the witness assignment by walking the tables.
        reconstruct(&table, root, root_host, root_mask, &mut assignment);
    }

    // Final safety re-check: consistent, total, injective homomorphism.
    let total: Vec<Element> = assignment
        .iter()
        .map(|x| x.expect("all assigned"))
        .collect();
    let mut seen = std::collections::BTreeSet::new();
    if total.iter().all(|&x| seen.insert(x)) && cq_structures::is_homomorphism(a, b, &total) {
        Some(total)
    } else {
        None
    }
}

type WitnessTable = Vec<Vec<BTreeMap<u32, Vec<(usize, usize, u32)>>>>;

fn reconstruct(
    table: &WitnessTable,
    v: usize,
    host: usize,
    mask: u32,
    assignment: &mut Vec<Option<Element>>,
) {
    assignment[v] = Some(host);
    if let Some(witness) = table[v][host].get(&mask) {
        for &(child, chost, cmask) in witness {
            reconstruct(table, child, chost, cmask, assignment);
        }
    }
}

/// All tuples of `a` entirely inside {v, parent(v)} must be satisfied by the
/// candidate images (checks loops on v and the v–parent edges in either
/// orientation, which is all that a forest query has).
fn host_ok(
    a: &Structure,
    b: &Structure,
    v: usize,
    host: usize,
    parent: Option<usize>,
    assignment: &[Option<Element>],
) -> bool {
    for (sym, t) in a.all_tuples() {
        if !t.contains(&(v as u32)) {
            continue;
        }
        let inside = t.iter().all(|&e| {
            e as usize == v || Some(e as usize) == parent || assignment[e as usize].is_some()
        });
        if !inside {
            continue;
        }
        // Only check tuples not involving the (not yet chosen) parent image.
        if t.iter().any(|&e| Some(e as usize) == parent) {
            continue;
        }
        let mapped: Option<Vec<Element>> = t
            .iter()
            .map(|&e| {
                if e as usize == v {
                    Some(host)
                } else {
                    assignment[e as usize]
                }
            })
            .collect();
        if let Some(mapped) = mapped {
            let Some(bsym) = b.vocabulary().id_of(a.vocabulary().name(sym)) else {
                return false;
            };
            if !b.contains(bsym, &mapped) {
                return false;
            }
        }
    }
    true
}

/// All tuples of `a` entirely inside {v, c} must be satisfied by the images
/// (host, chost).
fn edge_ok(a: &Structure, b: &Structure, v: usize, host: usize, c: usize, chost: usize) -> bool {
    for (sym, t) in a.all_tuples() {
        if !t.iter().all(|&e| e as usize == v || e as usize == c) || !t.contains(&(c as u32)) {
            continue;
        }
        let mapped: Vec<Element> = t
            .iter()
            .map(|&e| if e as usize == v { host } else { chost })
            .collect();
        let Some(bsym) = b.vocabulary().id_of(a.vocabulary().name(sym)) else {
            return false;
        };
        if !b.contains(bsym, &mapped) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_structures::{embedding_exists, families};

    #[test]
    fn hash_family_is_injective_on_small_subsets() {
        // Lemma 3.14: for every k-subset there exist (p, q) below the bound.
        let n = 200;
        let subsets: Vec<Vec<usize>> = vec![
            vec![3, 77, 150],
            vec![0, 1, 2, 3, 4],
            vec![10, 50, 90, 130, 170, 199],
            (0..8).map(|i| i * 23).collect(),
        ];
        for subset in subsets {
            let k = subset.len();
            let (p, q) = find_injective_hash(&subset, k, n).expect("lemma 3.14 pair exists");
            assert!(q < p);
            assert!(is_prime(p));
            let colouring = hash_coloring(p, q, k, n);
            let mut seen = std::collections::BTreeSet::new();
            assert!(subset.iter().all(|&m| seen.insert(colouring[m])));
            assert!(colouring.iter().all(|&c| c < k * k));
        }
    }

    #[test]
    fn primality_helper() {
        assert!(is_prime(2));
        assert!(is_prime(13));
        assert!(!is_prime(1));
        assert!(!is_prime(21));
    }

    #[test]
    fn path_embedding_found_in_cycle() {
        // P_5 embeds into C_8.
        let a = families::path(5);
        let b = families::cycle(8);
        let e = embedding_via_colour_coding(&a, &b, ColorCodingConfig::default());
        assert!(e.is_some());
    }

    #[test]
    fn path_embedding_absent_when_too_long() {
        // P_5 does not embed into the star K_{1,6} (longest path has 3 vertices).
        let a = families::path(5);
        let b = families::star(6);
        assert!(!embedding_exists(&a, &b));
        let e = embedding_via_colour_coding(&a, &b, ColorCodingConfig::default());
        assert!(e.is_none());
    }

    #[test]
    fn tree_embedding_matches_reference() {
        // The complete binary tree of height 2 embeds into the 3x3 grid?
        let a = families::tree_t(2);
        for b in [
            families::grid(3, 3),
            families::star(8),
            families::caterpillar(4, 2),
        ] {
            let expected = embedding_exists(&a, &b);
            let got =
                embedding_via_colour_coding(&a, &b, ColorCodingConfig::for_query_size(7)).is_some();
            assert_eq!(got, expected, "target {b}");
        }
    }

    #[test]
    fn directed_path_embedding() {
        let a = families::directed_path(4);
        let yes = families::directed_cycle(6);
        let no = families::directed_cycle(3);
        assert!(embedding_via_colour_coding(&a, &yes, ColorCodingConfig::default()).is_some());
        assert!(embedding_via_colour_coding(&a, &no, ColorCodingConfig::default()).is_none());
    }

    #[test]
    fn query_larger_than_host_is_rejected_quickly() {
        let a = families::path(5);
        let b = families::path(3);
        assert!(embedding_via_colour_coding(&a, &b, ColorCodingConfig::default()).is_none());
    }

    #[test]
    #[should_panic]
    fn cyclic_query_rejected() {
        let a = families::cycle(4);
        let b = families::cycle(6);
        let _ = embedding_via_colour_coding(&a, &b, ColorCodingConfig::default());
    }

    #[test]
    fn trials_scale_with_query_size() {
        let small = ColorCodingConfig::for_query_size(3);
        let big = ColorCodingConfig::for_query_size(8);
        assert!(big.trials > small.trials);
    }
}
