//! The para-L algorithms for bounded tree depth: decision via the Lemma 3.3
//! sentence compilation, and counting via the sum–product recursion of
//! Theorem 6.1 (3).
//!
//! Decision: compile the query's core into a `{∧,∃}`-sentence whose
//! quantifier rank is the core's tree depth (Lemma 3.3) and evaluate it with
//! the metered model checker (Lemma 3.11); the peak space is
//! `O(f(k) + log n)` — the defining resource bound of `para-L`.
//!
//! Counting: the paper's proof of Theorem 6.1 (3) counts homomorphisms from
//! a rooted tree-shaped coloured query by the recursion
//! `N_{r→b} = Π_i Σ_{b'} N_{t_i→b'}` and lifts it to bounded tree depth via
//! the canonical tree decomposition of an elimination forest.  We implement
//! the recursion directly over the elimination forest of the query: for a
//! forest node `v` whose ancestors are already assigned, the number of
//! extensions below `v` factorizes over `v`'s children once the image of `v`
//! is fixed — because every edge of the query joins an ancestor–descendant
//! pair of the forest.  The space used is one image per ancestor, i.e.
//! `O(td · log |B|)`, and the numbers are combined by iterated sums and
//! products exactly as in the paper.

use cq_decomp::treedepth::treedepth_exact;
use cq_decomp::EliminationForest;
use cq_graphs::gaifman_graph;
use cq_logic::modelcheck::model_check_metered;
use cq_logic::treedepth_sentence::corresponding_sentence;
use cq_logic::SpaceReport;
use cq_structures::{Element, Structure};

/// Result of the tree-depth decision procedure.
#[derive(Debug, Clone)]
pub struct TreeDepthRun {
    /// Whether a homomorphism exists.
    pub exists: bool,
    /// The tree depth of the query's core (the `f(k)` of the space bound).
    pub core_treedepth: usize,
    /// The quantifier rank of the compiled sentence.
    pub quantifier_rank: usize,
    /// The metered space report of the model-checking run.
    pub space: SpaceReport,
}

/// Decide `HOM(A, B)` through the Lemma 3.3 / Lemma 3.11 pipeline.
pub fn hom_via_treedepth(a: &Structure, b: &Structure) -> TreeDepthRun {
    hom_via_compiled_sentence(&corresponding_sentence(a), b)
}

/// Decide `HOM(A, B)` from an **already compiled** tree-depth sentence — the
/// prepared-query path: the engine compiles the query's sentence once (from
/// the elimination-forest certificate of its structural analysis) and
/// model-checks that same sentence against every database, so per-database
/// work is the Lemma 3.11 model check alone.
pub fn hom_via_compiled_sentence(
    compiled: &cq_logic::treedepth_sentence::TreeDepthSentence,
    b: &Structure,
) -> TreeDepthRun {
    let (exists, space) = model_check_metered(b, &compiled.sentence);
    TreeDepthRun {
        exists,
        core_treedepth: compiled.treedepth,
        quantifier_rank: compiled.sentence.quantifier_rank(),
        space,
    }
}

/// Count homomorphisms from `a` to `b` by the sum–product recursion over an
/// elimination forest of `a` (Theorem 6.1 (3)).
///
/// Note: counting is **not** invariant under taking cores (unlike decision),
/// so the recursion runs on `a` itself; the tree depth governing the cost is
/// `td(a)`, which for the classes of Theorem 6.1 (3) is bounded because the
/// theorem's hypothesis bounds the tree depth of the class members
/// themselves.
pub fn count_hom_via_treedepth(a: &Structure, b: &Structure) -> u64 {
    let g = gaifman_graph(a);
    let (_, forest) = treedepth_exact(&g);
    count_with_forest(a, b, &forest)
}

/// As [`count_hom_via_treedepth`], with a caller-provided elimination forest
/// (must be valid for the Gaifman graph of `a`).
pub fn count_with_forest(a: &Structure, b: &Structure, forest: &EliminationForest) -> u64 {
    debug_assert!(forest.is_valid_for(&gaifman_graph(a)));
    let children = forest.children();
    // Assignment of ancestors along the current root-to-node path, indexed by
    // query element (None when unassigned).
    let mut assignment: Vec<Option<Element>> = vec![None; a.universe_size()];

    // Count extensions of the current ancestor assignment to the subtree
    // rooted at v (including v itself).
    fn subtree_count(
        a: &Structure,
        b: &Structure,
        children: &[Vec<usize>],
        v: usize,
        assignment: &mut Vec<Option<Element>>,
        // scratch: reused buffer listing tuples touching v (not precomputed
        // for simplicity; the structures are parameter-sized)
    ) -> u64 {
        let mut total = 0u64;
        'candidates: for image in b.universe() {
            // Check every tuple of `a` that involves v and whose elements are
            // all assigned once v ↦ image.
            assignment[v] = Some(image);
            for (sym, t) in a.all_tuples() {
                if !t.contains(&(v as u32)) {
                    continue;
                }
                let mapped: Option<Vec<Element>> =
                    t.iter().map(|&e| assignment[e as usize]).collect();
                if let Some(mapped) = mapped {
                    let Some(bsym) = b.vocabulary().id_of(a.vocabulary().name(sym)) else {
                        assignment[v] = None;
                        return 0;
                    };
                    if !b.contains(bsym, &mapped) {
                        assignment[v] = None;
                        continue 'candidates;
                    }
                }
            }
            // Children factorize (their strict subtrees are disjoint and all
            // query edges respect the ancestor relation).
            let mut product = 1u64;
            for &c in &children[v] {
                let c_count = subtree_count(a, b, children, c, assignment);
                product = product.saturating_mul(c_count);
                if product == 0 {
                    break;
                }
            }
            total = total.saturating_add(product);
            assignment[v] = None;
        }
        assignment[v] = None;
        total
    }

    let mut result = 1u64;
    for root in forest.roots() {
        let root_count = subtree_count(a, b, &children, root, &mut assignment);
        result = result.saturating_mul(root_count);
        if result == 0 {
            break;
        }
    }
    // A query with an empty universe cannot occur (structures are non-empty);
    // isolated elements are handled because they appear as forest roots or
    // leaves with no incident tuples, contributing a factor |B| each.
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_structures::{
        count_homomorphisms_bruteforce, families, homomorphism_exists, star_expansion,
    };

    #[test]
    fn decision_agrees_with_reference() {
        let queries = [
            families::star(3),
            families::path(5),
            families::cycle(4),
            families::cycle(5),
            families::grid(2, 2),
            families::directed_path(3),
        ];
        let targets = [
            families::path(4),
            families::cycle(6),
            families::cycle(5),
            families::clique(3),
            families::grid(3, 3),
            families::directed_cycle(4),
        ];
        for a in &queries {
            for b in &targets {
                if a.vocabulary().same_symbols(b.vocabulary()) {
                    let run = hom_via_treedepth(a, b);
                    assert_eq!(run.exists, homomorphism_exists(a, b), "{a} -> {b}");
                    assert!(run.quantifier_rank <= run.core_treedepth.max(1));
                }
            }
        }
    }

    #[test]
    fn space_is_governed_by_core_treedepth_not_query_size() {
        // Large stars all evaluate with the same peak assignment size (2).
        let db = families::clique(5);
        for leaves in [3usize, 6, 12] {
            let run = hom_via_treedepth(&families::star(leaves), &db);
            assert!(run.exists);
            assert!(run.space.peak_assignment <= 2);
        }
    }

    #[test]
    fn counting_agrees_with_bruteforce() {
        let queries = [
            families::star(2),
            families::path(4),
            families::cycle(3),
            families::cycle(4),
            families::directed_path(3),
            families::grid(2, 2),
        ];
        let targets = [
            families::path(4),
            families::cycle(5),
            families::clique(3),
            families::clique(4),
            families::directed_cycle(6),
            families::grid(2, 3),
        ];
        for a in &queries {
            for b in &targets {
                if a.vocabulary().same_symbols(b.vocabulary()) {
                    assert_eq!(
                        count_hom_via_treedepth(a, b),
                        count_homomorphisms_bruteforce(a, b),
                        "{a} -> {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn counting_closed_forms() {
        // Star K_{1,l} into K_m: m (m-1)^l.
        assert_eq!(
            count_hom_via_treedepth(&families::star(3), &families::clique(4)),
            4 * 27
        );
        // Single undirected edge into C_n: 2n.
        assert_eq!(
            count_hom_via_treedepth(&families::path(2), &families::cycle(7)),
            14
        );
        // Isolated-vertex query (one element, no tuples) into anything: |B|.
        let single = cq_structures::Structure::new(cq_structures::Vocabulary::graph(), 1).unwrap();
        assert_eq!(count_hom_via_treedepth(&single, &families::path(9)), 9);
    }

    #[test]
    fn counting_colored_instances() {
        let q = star_expansion(&families::star(2));
        let target =
            cq_structures::ops::colored_target(3, &families::clique(4), |e| vec![e, (e + 1) % 4]);
        assert_eq!(
            count_hom_via_treedepth(&q, &target),
            count_homomorphisms_bruteforce(&q, &target)
        );
    }

    #[test]
    fn unsatisfiable_counting_is_zero() {
        assert_eq!(
            count_hom_via_treedepth(&families::cycle(3), &families::path(2)),
            0
        );
        let run = hom_via_treedepth(&families::cycle(3), &families::path(2));
        assert!(!run.exists);
    }
}
