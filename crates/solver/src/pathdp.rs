//! Homomorphism decision by sweeping a path decomposition — the algorithm
//! behind `p-EMB(A) ∈ PATH` for bounded pathwidth classes (Theorem 4.6),
//! specialized here to the homomorphism problem.
//!
//! The machine in the proof of Theorem 4.6 guesses, bag by bag along a
//! *staircase* path decomposition (consecutive bags comparable by strict
//! inclusion), a partial homomorphism for the current bag, keeping only one
//! bag's worth of assignment in memory — `O(w·(log|A| + log|B|))` space plus
//! the decomposition itself.  A deterministic simulation keeps the *set* of
//! viable bag assignments (the frontier) instead of guessing one; the
//! frontier never exceeds `|B|^{w+1}` entries, and the sweep visits each bag
//! once.  The [`PathDpReport`] records the maximal frontier size so that the
//! experiments can contrast this against the tree DP's table sizes.

use cq_decomp::PathDecomposition;
use cq_graphs::gaifman_graph;
use cq_structures::{Element, PartialHom, Structure};
use std::collections::BTreeSet;

/// Metering information for a path-DP run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PathDpReport {
    /// Whether a homomorphism exists.
    pub exists: bool,
    /// The largest number of simultaneously stored partial homomorphisms.
    pub peak_frontier: usize,
    /// The number of bags processed (after staircase normalization).
    pub bags: usize,
    /// The width of the (normalized) decomposition that was swept.
    pub width: usize,
}

use crate::treedec::reference_bag_assignments;

/// Decide `HOM(A, B)` by sweeping the given path decomposition of (the
/// Gaifman graph of) `A` left to right, keeping only the frontier of viable
/// current-bag assignments.
///
/// The decomposition is staircase-normalized first, exactly as the
/// Theorem 4.6 machine assumes (`X_i ⊊ X_{i+1}` or `X_{i+1} ⊊ X_i`).
pub fn hom_via_path_decomposition(
    a: &Structure,
    b: &Structure,
    pd: &PathDecomposition,
) -> PathDpReport {
    debug_assert!(pd.is_valid_for(&gaifman_graph(a)));
    hom_via_staircase(a, b, &pd.normalize_staircase())
}

/// As [`hom_via_path_decomposition`], but for a decomposition that is
/// **already** in staircase normal form — the prepared-query path: the
/// engine normalizes once at preparation time and sweeps the same staircase
/// against every database, instead of re-normalizing per evaluation.
///
/// Staircase form is checked in debug builds.
pub fn hom_via_staircase(a: &Structure, b: &Structure, stair: &PathDecomposition) -> PathDpReport {
    debug_assert!(stair.is_staircase());
    let mut report = PathDpReport {
        exists: false,
        peak_frontier: 0,
        bags: stair.bags.len(),
        width: stair.width(),
    };

    let mut frontier: Vec<PartialHom> = match stair.bags.first() {
        Some(first) => reference_bag_assignments(a, b, first),
        None => vec![PartialHom::empty()],
    };
    report.peak_frontier = report.peak_frontier.max(frontier.len());
    if frontier.is_empty() {
        return report;
    }

    for window in stair.bags.windows(2) {
        let (prev, next) = (&window[0], &window[1]);
        let mut new_frontier: BTreeSet<PartialHom> = BTreeSet::new();
        if next.is_subset(prev) {
            // Forget step: restrict every viable assignment to the smaller bag.
            let keep: Vec<Element> = next.iter().copied().collect();
            for h in &frontier {
                new_frontier.insert(h.restrict(&keep));
            }
        } else {
            // Introduce step: extend every viable assignment by the new
            // elements, checking the tuples inside the larger bag.
            let new_elems: Vec<Element> = next.difference(prev).copied().collect();
            for h in &frontier {
                extend(a, b, h, &new_elems, 0, next, &mut new_frontier);
            }
        }
        frontier = new_frontier.into_iter().collect();
        report.peak_frontier = report.peak_frontier.max(frontier.len());
        if frontier.is_empty() {
            return report;
        }
    }
    report.exists = !frontier.is_empty();
    report
}

/// Extend `h` by assignments of `new_elems`, keeping only extensions that are
/// partial homomorphisms on the bag `bag`.
fn extend(
    a: &Structure,
    b: &Structure,
    h: &PartialHom,
    new_elems: &[Element],
    idx: usize,
    bag: &BTreeSet<Element>,
    out: &mut BTreeSet<PartialHom>,
) {
    if idx == new_elems.len() {
        if consistent_on_bag(a, b, h, bag) {
            out.insert(h.clone());
        }
        return;
    }
    for candidate in b.universe() {
        let mut extended = h.clone();
        extended.insert(new_elems[idx], candidate);
        extend(a, b, &extended, new_elems, idx + 1, bag, out);
    }
}

/// Check all tuples of `a` lying entirely inside the bag against `h`.
fn consistent_on_bag(
    a: &Structure,
    b: &Structure,
    h: &PartialHom,
    bag: &BTreeSet<Element>,
) -> bool {
    for (sym, t) in a.all_tuples() {
        if !t.iter().all(|&e| bag.contains(&(e as Element))) {
            continue;
        }
        let mapped: Option<Vec<Element>> = t.iter().map(|&e| h.get(e as usize)).collect();
        if let Some(mapped) = mapped {
            let Some(bsym) = b.vocabulary().id_of(a.vocabulary().name(sym)) else {
                return false;
            };
            if !b.contains(bsym, &mapped) {
                return false;
            }
        }
    }
    true
}

/// Convenience: compute an optimal path decomposition of the query's Gaifman
/// graph and sweep it.
pub fn hom_with_computed_path_decomposition(a: &Structure, b: &Structure) -> PathDpReport {
    let (_, pd) = cq_decomp::pathwidth::pathwidth_of_structure(a);
    hom_via_path_decomposition(a, b, &pd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_decomp::pathwidth::pathwidth_of_structure;
    use cq_structures::{families, homomorphism_exists, star_expansion};

    fn check(a: &Structure, b: &Structure) {
        let (_, pd) = pathwidth_of_structure(a);
        let report = hom_via_path_decomposition(a, b, &pd);
        assert_eq!(
            report.exists,
            homomorphism_exists(a, b),
            "mismatch for {a} -> {b}"
        );
    }

    #[test]
    fn agrees_with_reference_on_path_shaped_queries() {
        let queries = [
            families::path(3),
            families::path(5),
            families::directed_path(4),
            families::cycle(4),
            families::cycle(5),
            families::caterpillar(3, 1),
        ];
        let targets = [
            families::path(6),
            families::cycle(6),
            families::cycle(5),
            families::clique(3),
            families::grid(2, 3),
            families::directed_cycle(5),
        ];
        for a in &queries {
            for b in &targets {
                check(a, b);
            }
        }
    }

    #[test]
    fn colored_path_instances() {
        // P* instances: the bread and butter of the PATH degree.
        let p4 = star_expansion(&families::path(4));
        let target =
            cq_structures::ops::colored_target(4, &families::path(6), |e| vec![e, e + 1, e + 2]);
        let (_, pd) = pathwidth_of_structure(&p4);
        let report = hom_via_path_decomposition(&p4, &target, &pd);
        assert_eq!(report.exists, homomorphism_exists(&p4, &target));
    }

    #[test]
    fn frontier_stays_small_for_width_1_queries() {
        // For P_k queries the frontier holds at most |B|^2 assignments.
        let a = families::path(6);
        let b = families::cycle(8);
        let (w, pd) = pathwidth_of_structure(&a);
        assert_eq!(w, 1);
        let report = hom_via_path_decomposition(&a, &b, &pd);
        assert!(report.exists);
        assert!(report.peak_frontier <= 8 * 8);
        assert!(report.width <= 2);
    }

    #[test]
    fn unsatisfiable_instances_report_empty_frontier() {
        let a = families::cycle(5);
        let b = families::path(2);
        let (_, pd) = pathwidth_of_structure(&a);
        let report = hom_via_path_decomposition(&a, &b, &pd);
        assert!(!report.exists);
    }

    #[test]
    fn convenience_wrapper_works() {
        let report = hom_with_computed_path_decomposition(&families::path(4), &families::cycle(6));
        assert!(report.exists);
        assert!(report.bags >= 1);
    }
}
