//! Candidate domains and arc consistency for homomorphism search.
//!
//! For a homomorphism instance `(A, B)` the *domain* of an element `a ∈ A`
//! is the set of elements of `B` it may still be mapped to.  Initial domains
//! are derived from the unary relations (this is what makes `A*` instances so
//! constrained: every element's domain is the interpretation of its private
//! colour), and (pairwise) arc consistency shrinks them using the binary
//! projections of all relations.  Arc consistency is the classical polynomial
//! -time heuristic; it is sound (never removes a value used by a
//! homomorphism) but incomplete, and serves as the propagation step of the
//! backtracking baseline and as an ablation knob (experiment E12).

use cq_structures::{Element, Structure};
use std::collections::BTreeSet;

/// The candidate images for every element of the left-hand structure.
pub type Domains = Vec<BTreeSet<Element>>;

/// Initial domains: every element of `B` whose unary constraints allow it.
///
/// For every unary relation `U` with `a ∈ U^A`, the images of `a` are
/// restricted to `U^B`.  Higher-arity relations do not restrict initial
/// domains (they are handled by propagation and search).
pub fn initial_domains(a: &Structure, b: &Structure) -> Domains {
    let all: BTreeSet<Element> = b.universe().collect();
    let mut domains = vec![all; a.universe_size()];
    for (sym, t) in a.all_tuples() {
        if t.len() != 1 {
            continue;
        }
        let name = a.vocabulary().name(sym);
        let allowed: BTreeSet<Element> = match b.vocabulary().id_of(name) {
            Some(bsym) => b.relation(bsym).rows().map(|u| u[0] as Element).collect(),
            None => BTreeSet::new(),
        };
        domains[t[0] as usize] = domains[t[0] as usize]
            .intersection(&allowed)
            .copied()
            .collect();
    }
    domains
}

/// Run (generalized) arc consistency to a fixpoint: repeatedly remove from
/// the domain of `a` every value `v` such that some tuple of `A` containing
/// `a` cannot be completed to a tuple of the corresponding relation of `B`
/// using the current domains.  Returns `false` when some domain becomes
/// empty (no homomorphism exists).
pub fn arc_consistency(a: &Structure, b: &Structure, domains: &mut Domains) -> bool {
    loop {
        let mut changed = false;
        for (sym, t) in a.all_tuples() {
            let name = a.vocabulary().name(sym);
            let Some(bsym) = b.vocabulary().id_of(name) else {
                // A non-empty relation of A that B does not interpret: no
                // homomorphism can exist.
                for d in domains.iter_mut() {
                    d.clear();
                }
                return false;
            };
            let brel = b.relation(bsym);
            // For every position, compute the supported values.
            for (pos, &elem) in t.iter().enumerate() {
                let supported: BTreeSet<Element> = brel
                    .rows()
                    .filter(|bt| {
                        bt.iter()
                            .zip(t.iter())
                            .all(|(&bv, &ae)| domains[ae as usize].contains(&(bv as Element)))
                    })
                    .map(|bt| bt[pos] as Element)
                    .collect();
                let new: BTreeSet<Element> = domains[elem as usize]
                    .intersection(&supported)
                    .copied()
                    .collect();
                if new.len() != domains[elem as usize].len() {
                    domains[elem as usize] = new;
                    changed = true;
                }
            }
        }
        if domains.iter().any(|d| d.is_empty()) {
            return false;
        }
        if !changed {
            return true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_structures::{families, star_expansion};

    #[test]
    fn initial_domains_unrestricted_without_unary_relations() {
        let a = families::path(3);
        let b = families::path(5);
        let d = initial_domains(&a, &b);
        assert_eq!(d.len(), 3);
        assert!(d.iter().all(|dom| dom.len() == 5));
    }

    #[test]
    fn star_expansion_pins_domains_to_singletons_on_itself() {
        let a = families::path(3);
        let astar = star_expansion(&a);
        let d = initial_domains(&astar, &astar);
        assert!(d
            .iter()
            .enumerate()
            .all(|(i, dom)| dom.len() == 1 && dom.contains(&i)));
    }

    #[test]
    fn arc_consistency_is_incomplete_on_odd_cycles() {
        // C_3 -> K_2 has no homomorphism, but arc consistency alone cannot
        // detect it (every edge constraint has supports): the propagation
        // returns "consistent" and the search is needed — this is exactly why
        // AC is only an ablation knob and not a decision procedure.
        let a = families::cycle(3);
        let b = families::path(2);
        let mut d = initial_domains(&a, &b);
        assert!(arc_consistency(&a, &b, &mut d));
        assert!(d.iter().all(|dom| !dom.is_empty()));
        assert!(!cq_structures::homomorphism_exists(&a, &b));
    }

    #[test]
    fn arc_consistency_keeps_solutions() {
        // P_4 -> P_3 has homomorphisms; AC must not wipe any domain, and each
        // surviving value must extend to a solution... at least the ones used
        // by a known homomorphism must survive.
        let a = families::path(4);
        let b = families::path(3);
        let mut d = initial_domains(&a, &b);
        assert!(arc_consistency(&a, &b, &mut d));
        let h = cq_structures::find_homomorphism(&a, &b).unwrap();
        for (i, &img) in h.iter().enumerate() {
            assert!(d[i].contains(&img));
        }
    }

    #[test]
    fn missing_relation_in_target_wipes_domains() {
        let vocab = cq_structures::Vocabulary::from_pairs([("E", 2), ("R", 2)]).unwrap();
        let r = vocab.id_of("R").unwrap();
        let mut a = cq_structures::Structure::new(vocab, 2).unwrap();
        a.add_tuple(r, vec![0, 1]).unwrap();
        let b = families::path(3);
        let mut d = initial_domains(&a, &b);
        assert!(!arc_consistency(&a, &b, &mut d));
    }

    #[test]
    fn directed_path_domains_shrink_by_position() {
        // ->P_3 into ->P_3: AC forces element i to map to position i.
        let a = families::directed_path(3);
        let b = families::directed_path(3);
        let mut d = initial_domains(&a, &b);
        assert!(arc_consistency(&a, &b, &mut d));
        assert_eq!(d[0].iter().copied().collect::<Vec<_>>(), vec![0]);
        assert_eq!(d[1].iter().copied().collect::<Vec<_>>(), vec![1]);
        assert_eq!(d[2].iter().copied().collect::<Vec<_>>(), vec![2]);
    }
}
