//! Solvers for the concrete PATH-complete problems of Theorem 4.7:
//! `p-st-PATH`, `p-EMB(P)` (k-path) and `p-EMB(C)` (k-cycle).
//!
//! `p-st-PATH` is solvable by plain BFS (shortest paths in simple graphs are
//! simple).  The k-path and k-cycle problems are solved by colour coding
//! with a seeded RNG: "yes" answers come with an explicit witness, "no"
//! answers are one-sided Monte Carlo (error `(1 - k!/k^k)^trials`); small
//! instances can be cross-checked against the exact DFS baselines in
//! `cq_graphs::traversal`.

use crate::colour_coding::ColorCodingConfig;
use cq_graphs::{traversal, Graph, Vertex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `p-st-PATH`: is there a path of length at most `k` from `s` to `t`?
pub fn st_path_at_most(g: &Graph, s: Vertex, t: Vertex, k: usize) -> bool {
    traversal::st_path_within(g, s, t, k)
}

/// For a fixed colouring, compute for every vertex `v` the set of colour
/// masks realizable by colourful simple-in-colours paths on exactly `len`
/// vertices ending at `v` (and starting anywhere / at `start` when given).
fn colourful_path_masks(
    g: &Graph,
    colouring: &[usize],
    start: Option<Vertex>,
    len: usize,
) -> Vec<std::collections::BTreeSet<u32>> {
    let n = g.vertex_count();
    let mut current: Vec<std::collections::BTreeSet<u32>> = vec![Default::default(); n];
    for (v, masks) in current.iter_mut().enumerate() {
        if start.is_none() || start == Some(v) {
            masks.insert(1u32 << colouring[v]);
        }
    }
    for _ in 1..len {
        let mut next: Vec<std::collections::BTreeSet<u32>> = vec![Default::default(); n];
        for (v, masks) in current.iter().enumerate() {
            for &mask in masks {
                for w in g.neighbors(v) {
                    let bit = 1u32 << colouring[w];
                    if mask & bit == 0 {
                        next[w].insert(mask | bit);
                    }
                }
            }
        }
        current = next;
    }
    current
}

/// `p-EMB(P)`: does the graph contain a simple path on `k` vertices?
/// Colour coding; deterministic given the seed in `config`.
pub fn has_k_path(g: &Graph, k: usize, config: ColorCodingConfig) -> bool {
    if k == 0 {
        return true;
    }
    if k == 1 {
        return g.vertex_count() >= 1;
    }
    if k > g.vertex_count() {
        return false;
    }
    assert!(k <= 32, "colour masks are u32");
    let mut rng = StdRng::seed_from_u64(config.seed);
    for _ in 0..config.trials {
        let colouring: Vec<usize> = (0..g.vertex_count()).map(|_| rng.gen_range(0..k)).collect();
        let masks = colourful_path_masks(g, &colouring, None, k);
        if masks
            .iter()
            .any(|set| set.iter().any(|m| m.count_ones() as usize == k))
        {
            return true;
        }
    }
    false
}

/// `p-EMB(C)`: does the graph contain a simple cycle on exactly `k ≥ 3`
/// vertices?  Colour coding: for every start vertex, search a colourful path
/// on `k` vertices from it that ends at one of its neighbours.
pub fn has_k_cycle(g: &Graph, k: usize, config: ColorCodingConfig) -> bool {
    if k < 3 || k > g.vertex_count() {
        return false;
    }
    assert!(k <= 32, "colour masks are u32");
    let mut rng = StdRng::seed_from_u64(config.seed);
    for _ in 0..config.trials {
        let colouring: Vec<usize> = (0..g.vertex_count()).map(|_| rng.gen_range(0..k)).collect();
        for start in g.vertices() {
            let masks = colourful_path_masks(g, &colouring, Some(start), k);
            let closes = g
                .neighbors(start)
                .any(|w| masks[w].iter().any(|m| m.count_ones() as usize == k));
            if closes {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_graphs::families::*;
    use cq_graphs::traversal::{has_simple_cycle_of_order, has_simple_path_of_order};

    fn cfg(k: usize) -> ColorCodingConfig {
        ColorCodingConfig::for_query_size(k)
    }

    #[test]
    fn st_path_bounds() {
        let c8 = cycle_graph(8);
        assert!(st_path_at_most(&c8, 0, 4, 4));
        assert!(!st_path_at_most(&c8, 0, 4, 3));
        let disconnected = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(!st_path_at_most(&disconnected, 0, 3, 10));
    }

    #[test]
    fn k_path_matches_exact_baseline() {
        let graphs = [
            path_graph(7),
            cycle_graph(6),
            star_graph(5),
            grid_graph(2, 4),
            caterpillar_graph(3, 2),
            complete_binary_tree(2),
        ];
        for g in &graphs {
            for k in 1..=7 {
                let expected = has_simple_path_of_order(g, k);
                assert_eq!(has_k_path(g, k, cfg(k)), expected, "k={k} graph {g}");
            }
        }
    }

    #[test]
    fn k_path_edge_cases() {
        let g = path_graph(3);
        assert!(has_k_path(&g, 0, cfg(1)));
        assert!(has_k_path(&g, 1, cfg(1)));
        assert!(!has_k_path(&g, 4, cfg(4)));
    }

    #[test]
    fn k_cycle_matches_exact_baseline() {
        let graphs = [
            cycle_graph(6),
            grid_graph(2, 3),
            grid_graph(3, 3),
            complete_graph(5),
            path_graph(6),
            star_graph(4),
        ];
        for g in &graphs {
            for k in 3..=6 {
                let expected = has_simple_cycle_of_order(g, k);
                assert_eq!(has_k_cycle(g, k, cfg(k)), expected, "k={k} graph {g}");
            }
        }
    }

    #[test]
    fn k_cycle_rejects_degenerate_lengths() {
        let g = complete_graph(4);
        assert!(!has_k_cycle(&g, 2, cfg(2)));
        assert!(!has_k_cycle(&g, 5, cfg(5)));
    }
}
