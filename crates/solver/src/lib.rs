//! # cq-solver
//!
//! Homomorphism, embedding and counting algorithms for conjunctive-query
//! evaluation, organized by the structural property that licenses them —
//! mirroring the three degrees of the Classification Theorem (Theorem 3.1)
//! and the counting classification (Theorem 6.1):
//!
//! | property of the query (core) | decision algorithm | counting algorithm |
//! |---|---|---|
//! | bounded tree depth | [`treedepth::hom_via_treedepth`] (compile to a `{∧,∃}`-sentence of bounded rank and model-check it in pl-space, Lemma 3.3) | [`treedepth::count_hom_via_treedepth`] (sum–product over the elimination forest, Theorem 6.1 (3)) |
//! | bounded pathwidth | [`pathdp::hom_via_path_decomposition`] (sweep a staircase path decomposition keeping one partial homomorphism frontier, Theorem 4.6) | via the tree DP |
//! | bounded treewidth | [`treedec::hom_via_tree_decomposition`] (bottom-up DP over a tree decomposition) | [`treedec::count_hom_via_tree_decomposition`] |
//! | none (baseline) | [`backtrack::BacktrackSolver`] (backtracking + arc consistency) | brute-force enumeration |
//!
//! Embedding problems are handled through colour coding ([`colour_coding`],
//! Lemma 3.14/3.15): the concrete PATH-complete problems of Theorem 4.7 —
//! `p-st-PATH`, `p-EMB(P)` (k-path), `p-EMB(C)` (k-cycle) and their directed
//! versions — have dedicated solvers in [`problems`].
//!
//! The table above names the **reference** implementations; the [`kernel`]
//! module provides the indexed, flat-row production counterparts of each
//! (compiled bag programs, prefilter domains, separator hash-joins) that
//! the engine's registries actually dispatch to — the reference versions
//! are retained as the oracle the kernel is differentially tested against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backtrack;
pub mod colour_coding;
pub mod domains;
pub mod kernel;
pub mod pathdp;
pub mod problems;
pub mod semiring;
pub mod treedec;
pub mod treedepth;

pub use backtrack::BacktrackSolver;
pub use colour_coding::{hash_coloring, ColorCodingConfig};
pub use domains::{arc_consistency, initial_domains, Domains};
pub use kernel::{
    aggregate_via_search_indexed, aggregate_via_staircase_indexed,
    aggregate_via_tree_decomposition_indexed, aggregate_with_forest_indexed, bag_rows_indexed,
    count_hom_via_tree_decomposition_indexed, count_via_staircase_indexed,
    count_with_forest_indexed, find_hom_indexed, hom_via_forest_indexed, hom_via_staircase_indexed,
    hom_via_tree_decomposition_indexed, program_compilation_count, AnswerCursor, AnswerProgram,
    BagProgram, ForestProgram, ForestRun, GroupTable, KernelSearchStats, QueryDomains,
    RetainedEvalStats, SearchProgram, StairProgram, TreeDpProgram, TreeDpRun, TreeIncrementalState,
};
pub use pathdp::{hom_via_path_decomposition, hom_via_staircase, PathDpReport};
pub use problems::{has_k_cycle, has_k_path, st_path_at_most};
pub use semiring::{
    BoolSemiring, CheckedNatSemiring, Cost, MaxWeightSemiring, MinCostSemiring, Nat, Semiring,
};
pub use treedec::{count_hom_via_tree_decomposition, hom_via_tree_decomposition};
pub use treedepth::{count_hom_via_treedepth, hom_via_compiled_sentence, hom_via_treedepth};
