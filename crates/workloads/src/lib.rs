//! # cq-workloads
//!
//! Deterministic, seeded generators of query and database workloads for the
//! experiments in EXPERIMENTS.md.  Everything is reproducible from a seed:
//! the benches print the seeds they use.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cq_graphs::Graph;
use cq_structures::{ConjunctiveQuery, DeltaBatch, Structure, StructureBuilder, Vocabulary};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random undirected graph `G(n, p)` (Erdős–Rényi), as a [`Graph`].
pub fn random_graph(n: usize, edge_probability: f64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(edge_probability) {
                g.add_edge(i, j);
            }
        }
    }
    g
}

/// A random undirected graph as a relational structure over `{E/2}`.
pub fn random_graph_structure(n: usize, edge_probability: f64, seed: u64) -> Structure {
    random_graph(n, edge_probability, seed).to_structure()
}

/// A random directed graph (each ordered pair independently an arc).
pub fn random_digraph_structure(n: usize, arc_probability: f64, seed: u64) -> Structure {
    let mut rng = StdRng::seed_from_u64(seed);
    let vocab = Vocabulary::graph();
    let e = vocab.id_of("E").unwrap();
    let mut b = StructureBuilder::new(vocab).with_universe(n);
    for i in 0..n {
        for j in 0..n {
            if i != j && rng.gen_bool(arc_probability) {
                b.raw_fact(e, vec![i, j]);
            }
        }
    }
    b.build().expect("non-empty")
}

/// A random database over a binary schema with `relations` relation symbols
/// (`R0 … R{relations-1}`), `n` elements and roughly `tuples_per_relation`
/// tuples each — the kind of instance a relational engine would evaluate a
/// conjunctive query against.
pub fn random_database(
    n: usize,
    relations: usize,
    tuples_per_relation: usize,
    seed: u64,
) -> Structure {
    let mut rng = StdRng::seed_from_u64(seed);
    let vocab =
        Vocabulary::from_pairs((0..relations).map(|i| (format!("R{i}"), 2))).expect("fresh names");
    let mut b = StructureBuilder::new(vocab.clone()).with_universe(n);
    for r in 0..relations {
        let sym = vocab.id_of(&format!("R{r}")).unwrap();
        for _ in 0..tuples_per_relation {
            let x = rng.gen_range(0..n);
            let y = rng.gen_range(0..n);
            b.raw_fact(sym, vec![x, y]);
        }
    }
    b.build().expect("non-empty")
}

/// The chain join query `∃x₀…x_k R0(x₀,x₁) ∧ R1(x₁,x₂) ∧ …` over the schema
/// of [`random_database`] — a bounded-pathwidth query shape typical of
/// multi-way joins.
pub fn chain_join_query(length: usize, relations: usize) -> ConjunctiveQuery {
    let mut q = ConjunctiveQuery::new();
    for i in 0..length {
        let r = format!("R{}", i % relations.max(1));
        q.atom(&r, &[format!("x{i}"), format!("x{}", i + 1)]);
    }
    q
}

/// The star join query `∃c x₁…x_l R0(c,x₁) ∧ R1(c,x₂) ∧ …` — a tree-depth-2
/// query shape (the para-L degree).
pub fn star_join_query(legs: usize, relations: usize) -> ConjunctiveQuery {
    let mut q = ConjunctiveQuery::new();
    for i in 0..legs {
        let r = format!("R{}", i % relations.max(1));
        q.atom(&r, &["c".to_string(), format!("x{i}")]);
    }
    q
}

/// The cycle join query `R0(x₀,x₁) ∧ … ∧ R_{k-1}(x_{k-1},x₀)`.
pub fn cycle_join_query(length: usize, relations: usize) -> ConjunctiveQuery {
    let mut q = ConjunctiveQuery::new();
    for i in 0..length {
        let r = format!("R{}", i % relations.max(1));
        q.atom(&r, &[format!("x{i}"), format!("x{}", (i + 1) % length)]);
    }
    q
}

/// A database that is guaranteed to satisfy the given chain length: a long
/// directed path plus random noise arcs (used to produce yes-instances of
/// controlled size).
pub fn path_plus_noise(n: usize, noise_arcs: usize, seed: u64) -> Structure {
    let mut rng = StdRng::seed_from_u64(seed);
    let vocab = Vocabulary::graph();
    let e = vocab.id_of("E").unwrap();
    let mut b = StructureBuilder::new(vocab).with_universe(n);
    for i in 0..n.saturating_sub(1) {
        b.raw_fact(e, vec![i, i + 1]);
    }
    for _ in 0..noise_arcs {
        let x = rng.gen_range(0..n);
        let y = rng.gen_range(0..n);
        if x != y {
            b.raw_fact(e, vec![x, y]);
        }
    }
    b.build().expect("non-empty")
}

/// A fleet of random graph databases sharing size and density — the
/// database side of a repeated-query workload (one prepared query evaluated
/// against every member).
pub fn database_fleet(count: usize, n: usize, edge_probability: f64, seed: u64) -> Vec<Structure> {
    (0..count)
        .map(|i| random_graph_structure(n, edge_probability, seed.wrapping_add(i as u64)))
        .collect()
}

/// A batch-evaluation traffic trace: a small set of distinct query shapes, a
/// fleet of databases, and a sequence of (query index, database index)
/// instances in which each query recurs many times — the shape of traffic
/// the prepared-query engine's plan cache exists for.
#[derive(Debug, Clone)]
pub struct BatchWorkload {
    /// The distinct query structures (each index is referenced many times by
    /// the trace).
    pub queries: Vec<Structure>,
    /// The database fleet.
    pub databases: Vec<Structure>,
    /// The instance sequence as (query index, database index) pairs.
    pub trace: Vec<(usize, usize)>,
}

impl BatchWorkload {
    /// The instances of the trace as structure pairs, borrowed from the
    /// workload (the shape `Engine::solve_batch_instances` consumes).
    pub fn instances(&self) -> Vec<(&Structure, &Structure)> {
        self.trace
            .iter()
            .map(|&(q, d)| (&self.queries[q], &self.databases[d]))
            .collect()
    }

    /// Number of instances in the trace.
    pub fn len(&self) -> usize {
        self.trace.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.trace.is_empty()
    }
}

/// A deterministic repeated-query trace over graph-shaped queries (stars,
/// paths, odd cycles — one query per structural tier of the engine's solver
/// registry) against a fleet of random graph databases.  Every query occurs
/// `repeats_per_query` times; the interleaving is seeded and shuffled so
/// cache behaviour is realistic rather than perfectly clustered.
pub fn repeated_query_traffic(
    db_count: usize,
    db_size: usize,
    repeats_per_query: usize,
    seed: u64,
) -> BatchWorkload {
    use cq_structures::families;
    assert!(db_count > 0, "a traffic trace needs at least one database");
    let queries = vec![
        families::star(4),   // tree depth 2 -> para-L tier
        families::cycle(7),  // pathwidth 2, tree depth 4 -> path tier
        families::path(6),   // collapses to an edge under coring
        families::clique(4), // treewidth 3 -> tree-DP tier
    ];
    let databases = database_fleet(db_count, db_size, 0.35, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9);
    let mut trace: Vec<(usize, usize)> = (0..queries.len())
        .flat_map(|q| (0..repeats_per_query).map(move |_| q))
        .map(|q| (q, 0usize))
        .collect();
    for slot in trace.iter_mut() {
        slot.1 = rng.gen_range(0..databases.len());
    }
    // Fisher–Yates interleave of the query order.
    for i in (1..trace.len()).rev() {
        let j = rng.gen_range(0..i + 1);
        trace.swap(i, j);
    }
    BatchWorkload {
        queries,
        databases,
        trace,
    }
}

/// Per-thread traffic for hammering one shared engine: `threads` seeded
/// [`BatchWorkload`]s that all draw from the **same** four query shapes
/// (the per-tier set of [`repeated_query_traffic`]) but carry independent
/// database fleets and independently shuffled traces.  Overlapping query
/// fleets are the interesting concurrent regime — every thread races the
/// others to prepare the same plans, so plan-cache single-flighting and
/// shard locking are exercised on every distinct fingerprint.
pub fn concurrent_query_traffic(
    threads: usize,
    db_count: usize,
    db_size: usize,
    repeats_per_query: usize,
    seed: u64,
) -> Vec<BatchWorkload> {
    (0..threads)
        .map(|t| {
            repeated_query_traffic(
                db_count,
                db_size,
                repeats_per_query,
                seed.wrapping_add(0x5851_F42D_4C95_7F2D_u64.wrapping_mul(t as u64 + 1)),
            )
        })
        .collect()
}

/// A counting traffic trace whose every instance has a **closed-form
/// expected count** — the counting analogue of [`BatchWorkload`], used by
/// the counting differential tests and bench E15 to verify
/// `Engine::count_batch` end to end, not merely exercise it.
#[derive(Debug, Clone)]
pub struct CountingWorkload {
    /// The distinct query structures (each index recurs many times in the
    /// trace).
    pub queries: Vec<Structure>,
    /// The database fleet: complete graphs `K_q` (cliques are the targets
    /// with clean closed-form homomorphism counts).
    pub databases: Vec<Structure>,
    /// The instance sequence as (query index, database index) pairs.
    pub trace: Vec<(usize, usize)>,
    /// The closed-form expected count of each trace entry, aligned with
    /// `trace`.
    pub expected: Vec<u64>,
}

impl CountingWorkload {
    /// The instances of the trace as structure pairs, borrowed from the
    /// workload (the shape `Engine::count_batch` consumes).
    pub fn instances(&self) -> Vec<(&Structure, &Structure)> {
        self.trace
            .iter()
            .map(|&(q, d)| (&self.queries[q], &self.databases[d]))
            .collect()
    }

    /// Number of instances in the trace.
    pub fn len(&self) -> usize {
        self.trace.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.trace.is_empty()
    }
}

/// The falling factorial `q·(q-1)···(q-k+1)` — the number of homomorphisms
/// (= injective placements) of `K_k` into `K_q`.
fn falling_factorial(q: u64, k: u64) -> u64 {
    (0..k).map(|i| q.saturating_sub(i)).product()
}

/// A deterministic repeated-query **counting** trace with known
/// closed-form answers: paths, stars and a triangle against a fleet of
/// cliques `K_q`.  The closed forms (for `q ≥ 2`):
///
/// * `#hom(P_k, K_q) = q·(q-1)^(k-1)` — walk the path, each step avoiding
///   only its predecessor's colour;
/// * `#hom(K_{1,l}, K_q) = q·(q-1)^l` — place the centre, every leaf
///   independently avoids it;
/// * `#hom(K_3, K_q) = q·(q-1)·(q-2)` — injective placements of a clique.
///
/// The path queries have proper cores (an edge), so this traffic
/// deliberately crosses the core-invariance trap on every other instance;
/// every query recurs `repeats_per_query` times per the seeded, shuffled
/// interleaving, exercising the cached-plan counting path.
pub fn counting_traffic(
    clique_sizes: &[usize],
    repeats_per_query: usize,
    seed: u64,
) -> CountingWorkload {
    use cq_structures::families;
    assert!(
        !clique_sizes.is_empty(),
        "a counting trace needs at least one clique target"
    );
    assert!(
        clique_sizes.iter().all(|&q| q >= 3),
        "closed forms above assume q >= 3 (K_3 needs three colours)"
    );
    let queries = vec![
        families::path(4),   // proper core (edge): the counting trap
        families::star(3),   // tree depth 2; bipartite, so also a proper core
        families::clique(3), // treewidth 2, its own core
        families::path(6),   // proper core AND tree depth 3: deeper recursion
    ];
    // #hom(queries[i], K_q), in the order above.
    let closed_form = |query: usize, q: u64| -> u64 {
        match query {
            0 => q * (q - 1).pow(3),
            1 => q * (q - 1).pow(3),
            2 => falling_factorial(q, 3),
            _ => q * (q - 1).pow(5),
        }
    };
    let databases: Vec<Structure> = clique_sizes.iter().map(|&q| families::clique(q)).collect();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FF_EE00);
    let mut trace: Vec<(usize, usize)> = (0..queries.len())
        .flat_map(|q| (0..repeats_per_query).map(move |_| q))
        .map(|q| (q, 0usize))
        .collect();
    for slot in trace.iter_mut() {
        slot.1 = rng.gen_range(0..databases.len());
    }
    // Fisher–Yates interleave of the query order.
    for i in (1..trace.len()).rev() {
        let j = rng.gen_range(0..i + 1);
        trace.swap(i, j);
    }
    let expected = trace
        .iter()
        .map(|&(query, db)| closed_form(query, clique_sizes[db] as u64))
        .collect();
    CountingWorkload {
        queries,
        databases,
        trace,
        expected,
    }
}

/// A weighted-aggregate traffic trace whose every instance has
/// **closed-form expected min-cost and max-weight** — the weighted
/// analogue of [`CountingWorkload`], used by the weighted differential
/// tests and bench E20 to verify the engine's min-cost / max-weight entry
/// points end to end.
///
/// Each database carries its own per-tuple weight table.  The tables are
/// **uniform per database** (weight `w_d` on every tuple of database `d`),
/// which is what makes the oracle closed-form: every homomorphism from a
/// query with `m` tuples costs exactly `m · w_d`, so the minimum and the
/// maximum coincide at `m · w_d` whenever a homomorphism exists — and the
/// targets are cliques `K_q` with `q ≥ 3`, so one always does.
/// Non-uniform weightings are exercised by the brute-force differential
/// oracle instead, where no closed form exists.
#[derive(Debug, Clone)]
pub struct WeightedWorkload {
    /// The distinct query structures.
    pub queries: Vec<Structure>,
    /// The database fleet: cliques `K_q`.
    pub databases: Vec<Structure>,
    /// Per-database tuple-weight tables, aligned with `databases`.
    pub weights: Vec<cq_structures::TupleWeights>,
    /// The instance sequence as (query index, database index) pairs.
    pub trace: Vec<(usize, usize)>,
    /// Closed-form expected minimum cost of each trace entry.
    pub expected_min: Vec<Option<u64>>,
    /// Closed-form expected maximum weight of each trace entry.
    pub expected_max: Vec<Option<u64>>,
}

impl WeightedWorkload {
    /// The instances of the trace as (query, database, weights) triples,
    /// borrowed from the workload (the shape `Engine::min_cost_batch`
    /// consumes).
    pub fn instances(&self) -> Vec<(&Structure, &Structure, &cq_structures::TupleWeights)> {
        self.trace
            .iter()
            .map(|&(q, d)| (&self.queries[q], &self.databases[d], &self.weights[d]))
            .collect()
    }

    /// Number of instances in the trace.
    pub fn len(&self) -> usize {
        self.trace.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.trace.is_empty()
    }
}

/// A deterministic repeated-query **weighted** trace with closed-form
/// min-cost / max-weight answers: the [`counting_traffic`] query fleet
/// (paths, star, triangle — crossing the core-invariance trap, which
/// weighted aggregates share with counting) against uniformly weighted
/// cliques.  Database `d` of size `q_d` gets uniform weight `d + 2`, so
/// distinct databases produce distinct expected values.
pub fn weighted_traffic(
    clique_sizes: &[usize],
    repeats_per_query: usize,
    seed: u64,
) -> WeightedWorkload {
    use cq_structures::families;
    assert!(
        clique_sizes.iter().all(|&q| q >= 3),
        "every query here maps into K_q only for q >= 3"
    );
    let queries = vec![
        families::path(4),   // proper core (edge): the core-invariance trap
        families::star(3),   // tree depth 2 -> forest tier
        families::clique(3), // treewidth 2 -> tree-DP tier
        families::path(6),   // proper core, deeper recursion
    ];
    let databases: Vec<Structure> = clique_sizes.iter().map(|&q| families::clique(q)).collect();
    let weights: Vec<cq_structures::TupleWeights> = databases
        .iter()
        .enumerate()
        .map(|(d, db)| cq_structures::TupleWeights::uniform(db, d as u64 + 2))
        .collect();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0E20_0E20);
    let mut trace: Vec<(usize, usize)> = (0..queries.len())
        .flat_map(|q| (0..repeats_per_query).map(move |_| q))
        .map(|q| (q, 0usize))
        .collect();
    for slot in trace.iter_mut() {
        slot.1 = rng.gen_range(0..databases.len());
    }
    // Fisher–Yates interleave of the query order.
    for i in (1..trace.len()).rev() {
        let j = rng.gen_range(0..i + 1);
        trace.swap(i, j);
    }
    // Uniform weight w_d over K_q (q >= 3): every homomorphism costs
    // `w_d · #query-tuples` exactly, so min = max = that product.
    let closed_form = |query: usize, d: usize| -> Option<u64> {
        Some((d as u64 + 2) * queries[query].tuple_count() as u64)
    };
    let expected_min: Vec<Option<u64>> = trace
        .iter()
        .map(|&(query, d)| closed_form(query, d))
        .collect();
    let expected_max = expected_min.clone();
    WeightedWorkload {
        queries,
        databases,
        weights,
        trace,
        expected_min,
        expected_max,
    }
}

/// The evaluation-kernel stress trace (bench E16 and the kernel
/// differential tests): treewidth-2 query shapes — odd cycles, a grid, a
/// complete bipartite graph — against a fleet of **larger** random graph
/// targets, every query repeated `repeats_per_query` times over a seeded,
/// shuffled interleaving.
///
/// This is deliberately the regime where the reference implementations
/// hurt most: bags of 3 against targets of `db_size` vertices make the
/// reference's full `|B|^{|bag|}` bag enumeration and `O(n²)` frontier
/// joins expensive, while the kernel's prefilter domains and separator
/// hash-joins stay near-linear — the before/after that bench E16 times.
/// Several of the queries are bipartite (proper cores), so the counting
/// side crosses the core-invariance trap as well.
pub fn kernel_stress_traffic(
    db_count: usize,
    db_size: usize,
    repeats_per_query: usize,
    seed: u64,
) -> BatchWorkload {
    use cq_structures::families;
    assert!(db_count > 0, "a traffic trace needs at least one database");
    let queries = vec![
        families::cycle(5),                 // pw 2, its own core
        families::cycle(7),                 // pw 2, td 4: deeper DP tables
        families::grid(2, 3),               // tw 2, bipartite (proper core)
        families::complete_bipartite(2, 2), // tw 2, collapses to an edge
    ];
    let databases = database_fleet(db_count, db_size, 0.35, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xE16_E16);
    let mut trace: Vec<(usize, usize)> = (0..queries.len())
        .flat_map(|q| (0..repeats_per_query).map(move |_| q))
        .map(|q| (q, 0usize))
        .collect();
    for slot in trace.iter_mut() {
        slot.1 = rng.gen_range(0..databases.len());
    }
    // Fisher–Yates interleave of the query order.
    for i in (1..trace.len()).rev() {
        let j = rng.gen_range(0..i + 1);
        trace.swap(i, j);
    }
    BatchWorkload {
        queries,
        databases,
        trace,
    }
}

/// The E18 scale corpus: `fact_relations` dense binary relations
/// `R0 … R{fact_relations-1}` of roughly `fact_tuples_per_relation` tuples
/// each, plus one **sparse** binary relation `S` of roughly
/// `selective_tuples` tuples — the fact/dimension skew of a warehouse
/// workload.  The bulk of the 10^5–10^6 tuples lives in the fact
/// relations; selective joins touch `S`, where per-call program
/// recompilation (domain prefilters over the whole universe) costs more
/// than the join itself — exactly the regime the compiled-program cache
/// exists for.
pub fn scale_corpus(
    n: usize,
    fact_relations: usize,
    fact_tuples_per_relation: usize,
    selective_tuples: usize,
    seed: u64,
) -> Structure {
    let mut rng = StdRng::seed_from_u64(seed);
    let names: Vec<(String, usize)> = (0..fact_relations)
        .map(|i| (format!("R{i}"), 2))
        .chain(std::iter::once(("S".to_string(), 2)))
        .collect();
    let vocab = Vocabulary::from_pairs(names).expect("fresh names");
    let mut b = StructureBuilder::new(vocab.clone()).with_universe(n);
    for r in 0..fact_relations {
        let sym = vocab.id_of(&format!("R{r}")).unwrap();
        for _ in 0..fact_tuples_per_relation {
            let x = rng.gen_range(0..n);
            let y = rng.gen_range(0..n);
            b.raw_fact(sym, vec![x, y]);
        }
    }
    let s = vocab.id_of("S").unwrap();
    for _ in 0..selective_tuples {
        let x = rng.gen_range(0..n);
        let y = rng.gen_range(0..n);
        b.raw_fact(s, vec![x, y]);
    }
    b.build().expect("non-empty")
}

/// Selective join shapes over the sparse relation `S` of [`scale_corpus`]:
/// a chain, a star and a cycle whose every atom reads `S`.  Against a
/// fact-heavy corpus these are the high-selectivity queries whose kernel
/// *runs* are cheap (the driver iteration walks short posting lists) while
/// per-call program *compilation* still scans the whole universe — the
/// warm-vs-recompile gap bench E18 times.
pub fn selective_join_queries() -> Vec<Structure> {
    let mut chain = ConjunctiveQuery::new();
    for i in 0..3 {
        chain.atom("S", &[format!("x{i}"), format!("x{}", i + 1)]);
    }
    let mut star = ConjunctiveQuery::new();
    for i in 0..3 {
        star.atom("S", &["c".to_string(), format!("x{i}")]);
    }
    let mut cycle = ConjunctiveQuery::new();
    for i in 0..4 {
        cycle.atom("S", &[format!("x{i}"), format!("x{}", (i + 1) % 4)]);
    }
    [chain, star, cycle]
        .iter()
        .map(|q| q.canonical_structure().expect("non-empty join query"))
        .collect()
}

/// A seeded induced subsample of a large database: `elements` universe
/// elements chosen uniformly without replacement, with all induced tuples,
/// renumbered to `0..elements`.  This is how the scale-oracle tests shrink
/// the 10^5-tuple E18 corpus to something a brute-force reference can
/// enumerate while still drawing from the distribution the bench times.
pub fn subsample_database(db: &Structure, elements: usize, seed: u64) -> Structure {
    use std::collections::BTreeSet;
    let n = db.universe_size();
    let take = elements.clamp(1, n);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5CA1_E000);
    let mut subset = BTreeSet::new();
    while subset.len() < take {
        subset.insert(rng.gen_range(0..n));
    }
    let (sub, _map) = db
        .induced_substructure(&subset)
        .expect("non-empty in-range subset");
    sub
}

/// The E18 scale-bench query shapes over the [`random_database`] schema —
/// chain, star and cycle joins as canonical structures.  Each shape touches
/// **every** relation symbol `R0 … R{relations-1}` (symbol translation in
/// the kernel is name-based, so the query vocabulary must be interpretable
/// in the corpus), and together they span the engine's structural tiers:
/// the chain is pathwidth 1, the star is tree depth 2, the cycle is
/// pathwidth 2.
pub fn scale_join_queries(relations: usize) -> Vec<Structure> {
    [
        chain_join_query(relations.max(2), relations),
        star_join_query(relations.max(2), relations),
        cycle_join_query(relations.max(3), relations),
    ]
    .iter()
    .map(|q| q.canonical_structure().expect("non-empty join query"))
    .collect()
}

/// The E21 mutation traffic: `rounds` delta batches, each churning roughly
/// the `churn` fraction of every relation's rows (half deletions of
/// existing rows, half insertions of fresh rows) — update traffic against
/// a standing corpus, touching the dense fact relations and the sparse
/// `S` alike so every query family sees genuinely dirty DP bags each
/// round.
///
/// Batches are **sequential**: batch `i` is generated against the corpus
/// as left by batches `0..i` (deletions always name rows present at that
/// point).  They are also **epoch-safe** by construction: an inserted
/// element is drawn only from elements still occurring in that position of
/// that relation after the round's deletions, and a deletion never removes
/// an element's last occurrence in a position — so applying the traffic
/// never grows a position domain and the index's
/// [`domain_epoch`](cq_structures::StructureIndex::domain_epoch) stays
/// put, keeping compiled programs and retained DP tables warm (exactly
/// the regime bench E21 measures; domain-growing updates are covered
/// separately by the epoch tests).
///
/// Deterministic in `(db, rounds, churn, seed)`.
pub fn mutation_traffic(db: &Structure, rounds: usize, churn: f64, seed: u64) -> Vec<DeltaBatch> {
    use std::collections::HashMap;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0DE1_7A00);
    let mut current = db.clone();
    let mut batches = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        // Per-(symbol, position, element) occurrence counts, kept live as
        // the round's deletions are queued so no element's support drops
        // to zero.
        let mut support: HashMap<(u32, usize, u32), usize> = HashMap::new();
        for (sym, row) in current.all_tuples() {
            for (pos, &elem) in row.iter().enumerate() {
                *support.entry((sym.0, pos, elem)).or_default() += 1;
            }
        }
        let mut batch = DeltaBatch::new();
        for sym in current.vocabulary().ids() {
            let relation = current.relation(sym);
            if relation.is_empty() {
                continue;
            }
            let ops = ((relation.len() as f64 * churn).round() as usize).max(2);
            let deletions = ops / 2;
            let mut queued = 0usize;
            let mut attempts = 0usize;
            while queued < deletions && attempts < deletions * 8 {
                attempts += 1;
                let row = relation.row(rng.gen_range(0..relation.len())).to_vec();
                let duplicate = batch
                    .deletions()
                    .iter()
                    .any(|(s, r)| *s == sym && *r == row);
                let safe = !duplicate
                    && row
                        .iter()
                        .enumerate()
                        .all(|(pos, &elem)| support[&(sym.0, pos, elem)] >= 2);
                if !safe {
                    continue;
                }
                for (pos, &elem) in row.iter().enumerate() {
                    *support.get_mut(&(sym.0, pos, elem)).expect("counted") -= 1;
                }
                batch.delete(sym, row);
                queued += 1;
            }
            // Insertion pools: elements whose support in the position
            // survives this round's deletions.
            let arity = relation.arity();
            let pools: Vec<Vec<u32>> = (0..arity)
                .map(|pos| {
                    let mut pool: Vec<u32> = support
                        .iter()
                        .filter(|((s, p, _), &count)| *s == sym.0 && *p == pos && count > 0)
                        .map(|((_, _, elem), _)| *elem)
                        .collect();
                    pool.sort_unstable();
                    pool
                })
                .collect();
            let insertions = ops - deletions;
            let mut queued = 0usize;
            let mut attempts = 0usize;
            while queued < insertions && attempts < insertions * 8 {
                attempts += 1;
                let row: Vec<u32> = pools
                    .iter()
                    .map(|pool| pool[rng.gen_range(0..pool.len())])
                    .collect();
                if relation.contains_row(&row)
                    || batch
                        .insertions()
                        .iter()
                        .any(|(s, r)| *s == sym && *r == row)
                {
                    continue;
                }
                batch.insert(sym, row);
                queued += 1;
            }
        }
        current
            .apply_delta(&batch)
            .expect("generated against the current corpus");
        batches.push(batch);
    }
    batches
}

/// A fleet of `count` query structures with pairwise **distinct**
/// plan-cache fingerprints, spanning several shapes (stars, odd cycles,
/// directed paths, caterpillars).  A batch over this fleet performs `count`
/// preparations and `count` cache inserts — the shape that stresses
/// cache-lock contention (many concurrent misses) rather than plan reuse.
pub fn distinct_query_fleet(count: usize) -> Vec<Structure> {
    use cq_structures::families;
    (0..count)
        .map(|i| match i % 4 {
            0 => families::star(3 + i / 4),
            1 => families::cycle(2 * (i / 4) + 5),
            2 => families::directed_path(2 + i / 4),
            _ => families::caterpillar(1 + i / 4, 2),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_graph_is_deterministic_in_the_seed() {
        let g1 = random_graph(20, 0.3, 7);
        let g2 = random_graph(20, 0.3, 7);
        let g3 = random_graph(20, 0.3, 8);
        assert_eq!(g1, g2);
        assert_ne!(g1, g3);
        assert_eq!(g1.vertex_count(), 20);
    }

    #[test]
    fn random_digraph_and_database_shapes() {
        let d = random_digraph_structure(10, 0.2, 1);
        assert!(d.is_digraph());
        let db = random_database(50, 3, 100, 2);
        assert_eq!(db.vocabulary().len(), 3);
        assert_eq!(db.universe_size(), 50);
        assert!(db.tuple_count() <= 300);
    }

    #[test]
    fn join_queries_have_expected_shapes() {
        let chain = chain_join_query(4, 2);
        assert_eq!(chain.variable_count(), 5);
        assert_eq!(chain.atoms().len(), 4);
        let star = star_join_query(5, 2);
        assert_eq!(star.variable_count(), 6);
        let cyc = cycle_join_query(4, 1);
        assert_eq!(cyc.variable_count(), 4);
        // Their canonical structures have the right width profiles.
        let chain_s = chain.canonical_structure().unwrap();
        let star_s = star.canonical_structure().unwrap();
        assert_eq!(cq_decomp::width_profile_of_structure(&chain_s).pathwidth, 1);
        assert_eq!(cq_decomp::width_profile_of_structure(&star_s).treedepth, 2);
    }

    #[test]
    fn batch_workload_is_deterministic_and_well_formed() {
        let w1 = repeated_query_traffic(6, 12, 5, 11);
        let w2 = repeated_query_traffic(6, 12, 5, 11);
        assert_eq!(w1.trace, w2.trace);
        assert_eq!(w1.len(), 4 * 5);
        assert!(!w1.is_empty());
        assert_eq!(w1.databases.len(), 6);
        for &(q, d) in &w1.trace {
            assert!(q < w1.queries.len());
            assert!(d < w1.databases.len());
        }
        // Every query index recurs `repeats_per_query` times.
        for q in 0..w1.queries.len() {
            assert_eq!(w1.trace.iter().filter(|&&(qq, _)| qq == q).count(), 5);
        }
        let instances = w1.instances();
        assert_eq!(instances.len(), w1.len());
    }

    #[test]
    fn concurrent_traffic_shares_queries_but_not_traces() {
        let workloads = concurrent_query_traffic(4, 3, 10, 5, 99);
        assert_eq!(workloads.len(), 4);
        for w in &workloads {
            assert_eq!(w.queries, workloads[0].queries, "shared query fleet");
            assert_eq!(w.len(), workloads[0].len());
        }
        // Independent seeds: the database fleets differ between threads.
        assert_ne!(workloads[0].databases, workloads[1].databases);
        // Deterministic in the seed.
        let again = concurrent_query_traffic(4, 3, 10, 5, 99);
        for (w, v) in workloads.iter().zip(&again) {
            assert_eq!(w.trace, v.trace);
        }
    }

    #[test]
    fn counting_traffic_closed_forms_match_brute_force() {
        let w = counting_traffic(&[3, 4, 5], 3, 7);
        assert_eq!(w.len(), 4 * 3);
        assert_eq!(w.expected.len(), w.len());
        // Deterministic in the seed.
        let again = counting_traffic(&[3, 4, 5], 3, 7);
        assert_eq!(w.trace, again.trace);
        assert_eq!(w.expected, again.expected);
        // Every closed form is the brute-force truth.
        for (&(q, d), &expected) in w.trace.iter().zip(&w.expected) {
            assert_eq!(
                cq_structures::count_homomorphisms_bruteforce(&w.queries[q], &w.databases[d]),
                expected,
                "closed form wrong for query {q} into K_{}",
                w.databases[d].universe_size()
            );
        }
        // Every query index recurs repeats_per_query times.
        for q in 0..w.queries.len() {
            assert_eq!(w.trace.iter().filter(|&&(qq, _)| qq == q).count(), 3);
        }
    }

    #[test]
    fn weighted_traffic_closed_forms_match_brute_force() {
        use cq_structures::{homomorphisms_iter, StructureIndex};
        let w = weighted_traffic(&[3, 4, 5], 3, 7);
        assert_eq!(w.len(), 4 * 3);
        assert_eq!(w.expected_min.len(), w.len());
        assert_eq!(w.expected_max.len(), w.len());
        // Deterministic in the seed.
        let again = weighted_traffic(&[3, 4, 5], 3, 7);
        assert_eq!(w.trace, again.trace);
        assert_eq!(w.expected_min, again.expected_min);
        // Every closed form is the brute-force truth: enumerate all
        // homomorphisms, cost each by summing image-tuple weights.
        for (&(q, d), (&emin, &emax)) in w
            .trace
            .iter()
            .zip(w.expected_min.iter().zip(&w.expected_max))
        {
            let query = &w.queries[q];
            let db = &w.databases[d];
            let index = StructureIndex::new(db);
            let mut min: Option<u64> = None;
            let mut max: Option<u64> = None;
            for h in homomorphisms_iter(query, db) {
                let mut cost = 0u64;
                for sym in query.vocabulary().ids() {
                    let db_sym = db.vocabulary().id_of(query.vocabulary().name(sym)).unwrap();
                    for t in query.relation(sym).rows() {
                        let image: Vec<u32> = t.iter().map(|&v| h[v as usize] as u32).collect();
                        let row = index.row_of(db_sym, &image).expect("hom image is a tuple");
                        cost += w.weights[d].get(db_sym, row);
                    }
                }
                min = Some(min.map_or(cost, |m| m.min(cost)));
                max = Some(max.map_or(cost, |m| m.max(cost)));
            }
            assert_eq!(min, emin, "min closed form wrong for query {q} into db {d}");
            assert_eq!(max, emax, "max closed form wrong for query {q} into db {d}");
        }
    }

    #[test]
    fn kernel_stress_traffic_is_deterministic_and_heavy_enough() {
        let w1 = kernel_stress_traffic(4, 12, 6, 5);
        let w2 = kernel_stress_traffic(4, 12, 6, 5);
        assert_eq!(w1.trace, w2.trace);
        assert_eq!(w1.len(), 4 * 6);
        assert_eq!(w1.databases.len(), 4);
        for db in &w1.databases {
            assert_eq!(db.universe_size(), 12, "larger targets are the point");
        }
        // Every query has treewidth 2 — the tree-DP/counting tier.
        for q in &w1.queries {
            assert_eq!(cq_decomp::width_profile_of_structure(q).treewidth, 2);
        }
    }

    #[test]
    fn mutation_traffic_is_sequential_epoch_safe_and_deterministic() {
        use cq_structures::StructureIndex;
        let db = scale_corpus(60, 2, 400, 40, 9);
        let batches = mutation_traffic(&db, 4, 0.01, 7);
        assert_eq!(batches.len(), 4);
        // Deterministic in (db, rounds, churn, seed).
        let again = mutation_traffic(&db, 4, 0.01, 7);
        for (a, b) in batches.iter().zip(&again) {
            assert_eq!(a.deletions(), b.deletions());
            assert_eq!(a.insertions(), b.insertions());
        }
        assert_ne!(
            mutation_traffic(&db, 4, 0.01, 8)[0].deletions(),
            batches[0].deletions(),
            "seed changes the traffic"
        );
        // Every round applies cleanly in sequence, effectively changes the
        // corpus, touches the sparse S, and never bumps the domain epoch.
        let mut index = StructureIndex::new(&db);
        let epoch = index.domain_epoch();
        let s = db.vocabulary().id_of("S").expect("scale corpus schema");
        for batch in &batches {
            assert!(!batch.is_empty());
            assert!(
                batch
                    .deletions()
                    .iter()
                    .chain(batch.insertions())
                    .any(|(sym, _)| *sym == s),
                "churn must reach the selective relation"
            );
            let applied = index.apply_delta(batch).expect("sequentially valid");
            assert!(!applied.is_noop());
            assert_eq!(index.domain_epoch(), epoch, "epoch-safe by construction");
        }
    }

    #[test]
    fn distinct_query_fleet_has_distinct_fingerprints() {
        use cq_logic::canonical::query_fingerprint;
        let fleet = distinct_query_fleet(12);
        assert_eq!(fleet.len(), 12);
        let mut fingerprints: Vec<u64> = fleet.iter().map(query_fingerprint).collect();
        fingerprints.sort_unstable();
        fingerprints.dedup();
        assert_eq!(fingerprints.len(), 12, "every member preparable uniquely");
    }

    #[test]
    fn scale_corpus_is_deterministic_and_fact_heavy() {
        let db = scale_corpus(300, 3, 4_000, 300, 7);
        assert_eq!(db, scale_corpus(300, 3, 4_000, 300, 7));
        assert_eq!(db.vocabulary().len(), 4);
        assert_eq!(db.universe_size(), 300);
        let s = db.vocabulary().id_of("S").unwrap();
        let s_tuples = db.relation(s).len();
        assert!(s_tuples > 0 && s_tuples <= 300, "S stays sparse");
        assert!(
            db.tuple_count() - s_tuples > 10 * s_tuples,
            "facts dominate the corpus"
        );
    }

    #[test]
    fn selective_queries_read_only_the_sparse_relation() {
        let queries = selective_join_queries();
        assert_eq!(queries.len(), 3);
        for q in &queries {
            assert_eq!(q.vocabulary().len(), 1);
            assert_eq!(
                q.vocabulary().name(q.vocabulary().ids().next().unwrap()),
                "S"
            );
            assert!(q.tuple_count() >= 3);
        }
        let profiles: Vec<_> = queries
            .iter()
            .map(cq_decomp::width_profile_of_structure)
            .collect();
        assert_eq!(profiles[0].pathwidth, 1, "chain");
        assert_eq!(profiles[1].treedepth, 2, "star");
        assert_eq!(profiles[2].pathwidth, 2, "cycle");
    }

    #[test]
    fn subsample_is_deterministic_induced_and_small() {
        let db = random_database(200, 3, 2_000, 9);
        let s1 = subsample_database(&db, 15, 4);
        let s2 = subsample_database(&db, 15, 4);
        let s3 = subsample_database(&db, 15, 5);
        assert_eq!(s1, s2, "deterministic in the seed");
        assert_ne!(s1, s3, "different seeds pick different subsets");
        assert_eq!(s1.universe_size(), 15);
        assert_eq!(s1.vocabulary(), db.vocabulary());
        assert!(s1.tuple_count() > 0, "dense corpus: induced tuples survive");
        // Oversized requests saturate at the full universe.
        assert_eq!(subsample_database(&db, 10_000, 0).universe_size(), 200);
    }

    #[test]
    fn scale_queries_interpret_the_corpus_schema_and_span_tiers() {
        let db = random_database(50, 4, 100, 1);
        let queries = scale_join_queries(4);
        assert_eq!(queries.len(), 3);
        for q in &queries {
            for sym in q.vocabulary().ids() {
                let name = q.vocabulary().name(sym);
                assert!(
                    db.vocabulary().id_of(name).is_some(),
                    "query symbol {name} must exist in the corpus schema"
                );
            }
        }
        let profiles: Vec<_> = queries
            .iter()
            .map(cq_decomp::width_profile_of_structure)
            .collect();
        assert_eq!(profiles[0].pathwidth, 1, "chain");
        assert_eq!(profiles[1].treedepth, 2, "star");
        assert_eq!(profiles[2].pathwidth, 2, "cycle");
    }

    #[test]
    fn chain_queries_evaluate_on_path_plus_noise() {
        let db = path_plus_noise(30, 10, 3);
        let q = chain_join_query(5, 1);
        // Rename the relation R0 -> E to match the database schema: simplest
        // is to build the query directly over E.
        let mut q_e = ConjunctiveQuery::new();
        for a in q.atoms() {
            q_e.atom("E", &a.variables);
        }
        assert!(q_e.evaluate(&db).unwrap());
    }
}
