//! The long-lived TCP server over the [`cq_core::Engine`].
//!
//! # Architecture
//!
//! ```text
//!            accept thread (nonblocking listener, shutdown-polled)
//!                 │  admission: reject over the connection limit
//!                 ▼
//!  per connection: reader thread ──► bounded job queue ──► dispatcher thread
//!                 │    (frames in,      (admission:            │ drains up to
//!                 │     decode,          Busy when full)       │ coalesce_limit
//!                 │     enqueue)                               │ jobs, partitions
//!                 ▼                                            ▼ decide/count
//!             writer thread ◄── per-request reply channels ◄── solve_batch /
//!               (frames out, in request order — pipelining)    count_batch
//! ```
//!
//! * **Admission control**: connections over `max_connections` are refused
//!   with an error frame at the door; requests hitting a full job queue are
//!   answered [`ErrorCode::Busy`] instead of queueing unboundedly; frames
//!   over `max_frame_len` are rejected before allocation.
//! * **Per-connection quotas**: each connection is bounded by
//!   `max_in_flight_per_connection` (engine-bound requests awaiting an
//!   answer) and `max_requests_per_second` (token bucket) — so one greedy
//!   pipeliner cannot starve its peers.  Over-quota requests get a typed
//!   [`ErrorCode::Busy`] answer, never a disconnect.
//! * **Coalescing**: the dispatcher greedily drains whatever singleton
//!   decide/count jobs are queued — across *all* connections — and answers
//!   them through one `solve_batch_instances` / `count_batch` fan-out over
//!   the engine's worker pool, so concurrent single-request clients get
//!   batch throughput without asking for it.
//! * **Slow clients**: a peer that stalls mid-frame (or stops reading its
//!   responses) is disconnected after `io_timeout` without progress; a peer
//!   idling *between* frames is fine.
//! * **Lifecycle**: boot warm-starts from the configured plan store (when
//!   the file exists) and enables save-on-eviction; shutdown stops
//!   admitting, drains the queue, joins the threads, and `save_plans` — so
//!   the next boot answers with zero width DPs.

use crate::protocol::{
    read_request, write_response, ErrorCode, FrameError, QuerySpec, Request, Response,
    ServerCounters, ServiceStats, DEFAULT_MAX_FRAME_LEN, MAX_ANSWER_PAGE_LIMIT,
};
use cq_core::persist::WarmStartSummary;
use cq_core::{Engine, PersistError, PreparedQuery};
use cq_structures::{ConjunctiveQuery, Structure};
use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Tuning knobs of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Ceiling on a frame body; larger frames are refused before
    /// allocation.
    pub max_frame_len: usize,
    /// Concurrent connections admitted; the accept loop refuses the rest
    /// with an error frame.
    pub max_connections: usize,
    /// Bound on queued (admitted, not yet dispatched) requests across all
    /// connections; overflow is answered [`ErrorCode::Busy`].
    pub queue_depth: usize,
    /// Per-connection cap on engine-bound requests (decide/count, single
    /// or batch) admitted but not yet answered.  One greedy pipeliner hits
    /// this wall before it can monopolize the shared queue; over-quota
    /// requests are answered [`ErrorCode::Busy`], the connection stays up.
    pub max_in_flight_per_connection: usize,
    /// Per-connection request rate limit: a token bucket refilled at this
    /// many tokens per second (burst capacity of the same size), one token
    /// per decoded request of any kind.  Over-quota requests are answered
    /// [`ErrorCode::Busy`], the connection stays up.  `0` disables.
    pub max_requests_per_second: u32,
    /// Most singleton requests one dispatcher fan-out coalesces.
    pub coalesce_limit: usize,
    /// Patience with a peer that has started a frame but stopped feeding
    /// it, or stopped draining its responses.
    pub io_timeout: Duration,
    /// Plan-store path: warm-start source at boot, save-on-eviction sink
    /// while serving, `save_plans` target at shutdown.
    pub plan_store: Option<std::path::PathBuf>,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            max_connections: 64,
            queue_depth: 256,
            max_in_flight_per_connection: 64,
            max_requests_per_second: 0,
            coalesce_limit: 64,
            io_timeout: Duration::from_secs(5),
            plan_store: None,
        }
    }
}

/// Granularity of shutdown-flag polling (blocking reads and condvar waits
/// wake this often to notice a drain).
const POLL_QUANTUM: Duration = Duration::from_millis(25);

/// What [`Server::shutdown`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShutdownReport {
    /// Plans written to the configured store (0 without one).
    pub plans_saved: u64,
}

/// A queued unit of engine work plus the channel its answer goes back on.
enum Job {
    Decide {
        query: Arc<PreparedQuery>,
        database: Structure,
        reply: mpsc::Sender<Response>,
    },
    Count {
        query: Arc<PreparedQuery>,
        database: Structure,
        reply: mpsc::Sender<Response>,
    },
    DecideBatch {
        items: Vec<(Arc<PreparedQuery>, Structure)>,
        reply: mpsc::Sender<Response>,
    },
    CountBatch {
        items: Vec<(Arc<PreparedQuery>, Structure)>,
        reply: mpsc::Sender<Response>,
    },
    CountAnswers {
        query: ConjunctiveQuery,
        database: Structure,
        reply: mpsc::Sender<Response>,
    },
    Answers {
        query: ConjunctiveQuery,
        database: Structure,
        offset: u64,
        limit: usize,
        reply: mpsc::Sender<Response>,
    },
}

/// One slot of a connection's ordered response stream: either ready now
/// (answered inline by the reader) or owed by the dispatcher.
enum Pending {
    Ready(Box<Response>),
    Waiting(mpsc::Receiver<Response>),
}

/// Per-connection token bucket: `rate` tokens per second refill, burst
/// capacity of one second's worth.  Lives on the reader thread.
struct RateLimiter {
    rate: f64,
    tokens: f64,
    refilled: Instant,
}

impl RateLimiter {
    fn new(rate_per_second: u32) -> Option<RateLimiter> {
        (rate_per_second > 0).then(|| RateLimiter {
            rate: f64::from(rate_per_second),
            tokens: f64::from(rate_per_second),
            refilled: Instant::now(),
        })
    }

    /// Draw one token if the bucket (after refill) holds one.
    fn admit(&mut self) -> bool {
        let now = Instant::now();
        let elapsed = now.duration_since(self.refilled).as_secs_f64();
        self.tokens = (self.tokens + elapsed * self.rate).min(self.rate);
        self.refilled = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// One connection's in-flight accounting: reservations are taken on the
/// reader thread (before a job is enqueued) and released on the writer
/// thread (once the dispatcher's answer has been collected), so the count
/// is exactly the engine-bound requests this connection is still owed.
struct ConnQuota {
    in_flight: Arc<AtomicUsize>,
    max_in_flight: usize,
}

impl ConnQuota {
    /// Reserve an in-flight slot.  Only the reader thread increments, so
    /// load-then-add is race-free: concurrent writer decrements can only
    /// make room, never oversubscribe.
    fn try_reserve(&self) -> bool {
        if self.in_flight.load(Ordering::Acquire) >= self.max_in_flight {
            return false;
        }
        self.in_flight.fetch_add(1, Ordering::AcqRel);
        true
    }

    /// Give a reservation back without dispatching (the job was refused
    /// downstream or failed to resolve).
    fn release(&self) {
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

#[derive(Default)]
struct Counters {
    connections_accepted: AtomicU64,
    connections_rejected: AtomicU64,
    requests: AtomicU64,
    busy_rejections: AtomicU64,
    quota_rejections: AtomicU64,
    frame_errors: AtomicU64,
    dispatch_rounds: AtomicU64,
    coalesced_requests: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> ServerCounters {
        ServerCounters {
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            connections_rejected: self.connections_rejected.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            busy_rejections: self.busy_rejections.load(Ordering::Relaxed),
            quota_rejections: self.quota_rejections.load(Ordering::Relaxed),
            frame_errors: self.frame_errors.load(Ordering::Relaxed),
            dispatch_rounds: self.dispatch_rounds.load(Ordering::Relaxed),
            coalesced_requests: self.coalesced_requests.load(Ordering::Relaxed),
        }
    }
}

/// State shared by the accept loop, every connection thread, and the
/// dispatcher.
struct Shared {
    engine: Engine,
    config: ServiceConfig,
    shutdown: AtomicBool,
    active_connections: AtomicUsize,
    next_query_id: AtomicU64,
    registered: Mutex<HashMap<u64, Arc<PreparedQuery>>>,
    queue: Mutex<VecDeque<Job>>,
    queue_signal: Condvar,
    counters: Counters,
}

impl Shared {
    /// Admit a job or explain why not.  Taking the queue lock for both the
    /// shutdown check and the push closes the race against the dispatcher's
    /// exit (which verifies emptiness under the same lock): a job is either
    /// rejected here or guaranteed a dispatcher pass.
    fn enqueue(&self, job: Job) -> Result<(), Box<Response>> {
        let mut queue = self.queue.lock().expect("job queue lock");
        if self.shutdown.load(Ordering::SeqCst) {
            return Err(Box::new(Response::Error {
                code: ErrorCode::ShuttingDown,
                message: "server is draining".to_string(),
                offset: None,
            }));
        }
        if queue.len() >= self.config.queue_depth {
            self.counters
                .busy_rejections
                .fetch_add(1, Ordering::Relaxed);
            return Err(Box::new(Response::Error {
                code: ErrorCode::Busy,
                message: format!(
                    "in-flight queue full ({} requests); retry later",
                    self.config.queue_depth
                ),
                offset: None,
            }));
        }
        queue.push_back(job);
        drop(queue);
        self.queue_signal.notify_one();
        Ok(())
    }

    fn stats(&self) -> ServiceStats {
        ServiceStats {
            prep: self.engine.prep_stats(),
            cache: self.engine.cache_stats(),
            index: self.engine.index_stats(),
            server: self.counters.snapshot(),
        }
    }

    /// Resolve a [`QuerySpec`] to a prepared plan.  Registered ids hit the
    /// handle table; inline structures go through [`Engine::prepare`]
    /// (served from the plan cache when equivalent).  `prepare` panics on
    /// pathological inputs (e.g. beyond the exact-DP size cap) are caught
    /// and turned into [`ErrorCode::Internal`] so a hostile query cannot
    /// kill the connection thread.
    fn resolve(&self, spec: QuerySpec) -> Result<Arc<PreparedQuery>, Box<Response>> {
        match spec {
            QuerySpec::Registered(id) => self
                .registered
                .lock()
                .expect("registered map lock")
                .get(&id)
                .cloned()
                .ok_or_else(|| {
                    Box::new(Response::Error {
                        code: ErrorCode::UnknownQueryId,
                        message: format!("query id {id} was never registered on this server"),
                        offset: None,
                    })
                }),
            QuerySpec::Inline(query) => {
                catch_unwind(AssertUnwindSafe(|| self.engine.prepare(&query))).map_err(|_| {
                    Box::new(Response::Error {
                        code: ErrorCode::Internal,
                        message: "query preparation failed".to_string(),
                        offset: None,
                    })
                })
            }
        }
    }
}

/// A running query service bound to a TCP address.
///
/// Constructed with [`Server::start`]; stopped with [`Server::shutdown`]
/// (or remotely via [`Request::Shutdown`], after which `shutdown` just
/// joins the drain).
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    warm_start: Option<WarmStartSummary>,
    accept_handle: Option<std::thread::JoinHandle<()>>,
    dispatcher_handle: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Boot: warm-start the engine from the configured plan store (when the
    /// file exists), enable save-on-eviction, bind `addr`, and spawn the
    /// accept + dispatcher threads.  Bind to port 0 to let the OS pick
    /// (read it back with [`Server::local_addr`]).
    pub fn start(
        engine: Engine,
        addr: impl ToSocketAddrs,
        config: ServiceConfig,
    ) -> Result<Server, PersistError> {
        let mut engine = engine;
        let mut warm_start = None;
        if let Some(path) = &config.plan_store {
            if path.exists() {
                warm_start = Some(engine.load_plans(path)?);
            }
            engine = engine.with_eviction_store(path);
        }
        let listener = TcpListener::bind(addr).map_err(PersistError::Io)?;
        listener.set_nonblocking(true).map_err(PersistError::Io)?;
        let local_addr = listener.local_addr().map_err(PersistError::Io)?;

        let shared = Arc::new(Shared {
            engine,
            config,
            shutdown: AtomicBool::new(false),
            active_connections: AtomicUsize::new(0),
            next_query_id: AtomicU64::new(0),
            registered: Mutex::new(HashMap::new()),
            queue: Mutex::new(VecDeque::new()),
            queue_signal: Condvar::new(),
            counters: Counters::default(),
        });

        let accept_handle = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&shared, listener))
        };
        let dispatcher_handle = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || dispatcher_loop(&shared))
        };

        Ok(Server {
            shared,
            local_addr,
            warm_start,
            accept_handle: Some(accept_handle),
            dispatcher_handle: Some(dispatcher_handle),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// What the boot-time warm start loaded (None without a plan store or
    /// when no store file existed yet).
    pub fn warm_start(&self) -> Option<WarmStartSummary> {
        self.warm_start
    }

    /// Whether a drain has begun (locally or via [`Request::Shutdown`]).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Connections currently being served (the corruption tests assert this
    /// returns to zero — no leaked slots).
    pub fn active_connections(&self) -> usize {
        self.shared.active_connections.load(Ordering::SeqCst)
    }

    /// Service + engine counters (what [`Request::Stats`] reports).
    pub fn stats(&self) -> ServiceStats {
        self.shared.stats()
    }

    /// Begin draining without waiting: stop admitting connections and
    /// requests.  Idempotent; [`Server::shutdown`] implies it.
    pub fn begin_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue_signal.notify_all();
    }

    /// Graceful shutdown: drain the queue, join the accept/dispatcher
    /// threads, wait for connection threads to wind down, and persist every
    /// plan to the configured store.
    pub fn shutdown(mut self) -> Result<ShutdownReport, PersistError> {
        self.begin_shutdown();
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        if let Some(h) = self.dispatcher_handle.take() {
            let _ = h.join();
        }
        // Connection threads notice the flag within a poll quantum; give
        // stragglers (e.g. a peer mid-frame) a bounded grace period.
        let deadline = Instant::now() + self.shared.config.io_timeout + POLL_QUANTUM * 4;
        while self.shared.active_connections.load(Ordering::SeqCst) > 0 && Instant::now() < deadline
        {
            std::thread::sleep(POLL_QUANTUM);
        }
        let mut report = ShutdownReport::default();
        if let Some(path) = &self.shared.config.plan_store {
            report.plans_saved = self.shared.engine.save_plans(path)?;
        }
        Ok(report)
    }
}

/// Accept loop: poll the nonblocking listener, enforcing the connection
/// limit, until shutdown.
fn accept_loop(shared: &Arc<Shared>, listener: TcpListener) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let active = shared.active_connections.load(Ordering::SeqCst);
                if active >= shared.config.max_connections {
                    shared
                        .counters
                        .connections_rejected
                        .fetch_add(1, Ordering::Relaxed);
                    refuse_connection(stream, shared.config.max_connections);
                    continue;
                }
                shared.active_connections.fetch_add(1, Ordering::SeqCst);
                shared
                    .counters
                    .connections_accepted
                    .fetch_add(1, Ordering::Relaxed);
                let shared = Arc::clone(shared);
                std::thread::spawn(move || {
                    serve_connection(&shared, stream);
                    shared.active_connections.fetch_sub(1, Ordering::SeqCst);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_QUANTUM / 5);
            }
            Err(_) => std::thread::sleep(POLL_QUANTUM),
        }
    }
}

/// Tell an over-limit peer why it is being dropped (best effort).  Only
/// the write half is shut down (a clean FIN): resetting the read half too
/// would race an in-flight request from the peer and turn the refusal
/// frame into a connection reset before the peer reads it.
fn refuse_connection(mut stream: TcpStream, limit: usize) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
    let _ = write_response(
        &mut stream,
        &Response::Error {
            code: ErrorCode::Busy,
            message: format!("connection limit ({limit}) reached"),
            offset: None,
        },
    );
    let _ = stream.shutdown(std::net::Shutdown::Write);
}

/// Serve one connection: this thread reads and handles frames; a writer
/// thread drains the ordered response stream so responses pipeline while
/// the reader decodes the next request.
fn serve_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    // The read timeout is the poll quantum, not the io_timeout: each wakeup
    // checks the shutdown flag and the per-frame progress deadline.
    let _ = stream.set_read_timeout(Some(POLL_QUANTUM));
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let (pending_tx, pending_rx) = mpsc::channel::<Pending>();
    let quota = ConnQuota {
        in_flight: Arc::new(AtomicUsize::new(0)),
        max_in_flight: shared.config.max_in_flight_per_connection,
    };
    let mut limiter = RateLimiter::new(shared.config.max_requests_per_second);
    let writer = {
        let shared = Arc::clone(shared);
        let in_flight = Arc::clone(&quota.in_flight);
        std::thread::spawn(move || write_loop(&shared, write_half, pending_rx, &in_flight))
    };

    let mut reader = FrameSource {
        stream: &stream,
        shared,
        in_frame: false,
    };
    loop {
        reader.begin_frame();
        let outcome = read_request(&mut reader, shared.config.max_frame_len);
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match outcome {
            Ok(Ok(request)) => {
                shared.counters.requests.fetch_add(1, Ordering::Relaxed);
                if let Some(limiter) = limiter.as_mut() {
                    if !limiter.admit() {
                        shared
                            .counters
                            .quota_rejections
                            .fetch_add(1, Ordering::Relaxed);
                        let busy = Response::Error {
                            code: ErrorCode::Busy,
                            message: format!(
                                "request rate quota ({}/s) exceeded; retry later",
                                shared.config.max_requests_per_second
                            ),
                            offset: None,
                        };
                        if pending_tx.send(Pending::Ready(Box::new(busy))).is_err() {
                            break;
                        }
                        continue;
                    }
                }
                let is_shutdown = matches!(request, Request::Shutdown);
                match handle_request(shared, &quota, request) {
                    Some(pending) => {
                        if pending_tx.send(pending).is_err() {
                            break; // writer gone (peer stopped reading)
                        }
                    }
                    None => break,
                }
                if is_shutdown {
                    break;
                }
            }
            // Malformed payload in a clean frame: report (with the byte
            // offset) and keep the connection — framing is still in sync.
            Ok(Err(decode_err)) => {
                shared.counters.frame_errors.fetch_add(1, Ordering::Relaxed);
                log_line(&format!("rejected request: {decode_err}"));
                let error = Response::Error {
                    code: ErrorCode::Malformed,
                    message: decode_err.error.to_string(),
                    offset: Some(decode_err.offset as u64),
                };
                if pending_tx.send(Pending::Ready(Box::new(error))).is_err() {
                    break;
                }
            }
            // Envelope-level rejections: answer once, then close — after a
            // framing error the stream cannot be resynchronized.
            Err(
                e @ (FrameError::TooLarge { .. }
                | FrameError::BadChecksum
                | FrameError::Empty
                | FrameError::UnsupportedVersion { .. }),
            ) => {
                shared.counters.frame_errors.fetch_add(1, Ordering::Relaxed);
                log_line(&format!("closing connection: {e}"));
                let _ = pending_tx.send(Pending::Ready(Box::new(Response::Error {
                    code: ErrorCode::Malformed,
                    message: e.to_string(),
                    offset: None,
                })));
                break;
            }
            // Disconnects, mid-frame stalls past the deadline, transport
            // errors: close silently.
            Err(FrameError::Closed | FrameError::Truncated | FrameError::Io(_)) => break,
        }
    }
    // Dropping the sender lets the writer finish the responses still owed
    // (the dispatcher drains every admitted job even during shutdown) and
    // exit; join so the slot count only drops once the socket is done.
    drop(pending_tx);
    let _ = writer.join();
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// Blocking-with-deadline frame source over a poll-timeout socket.
///
/// Waiting *between* frames is unbounded (an idle client is fine) but
/// checks the shutdown flag each quantum; once a frame has started
/// arriving, each further read must make progress within `io_timeout` or
/// it fails (slow-loris rejection).  [`FrameSource::begin_frame`] re-arms
/// the idle state before each frame.
struct FrameSource<'a> {
    stream: &'a TcpStream,
    shared: &'a Shared,
    /// Whether any byte of the current frame has arrived (deadline armed).
    in_frame: bool,
}

impl FrameSource<'_> {
    /// Mark the boundary between frames: the next wait is idle-friendly
    /// again.
    fn begin_frame(&mut self) {
        self.in_frame = false;
    }
}

impl std::io::Read for FrameSource<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let deadline = Instant::now() + self.shared.config.io_timeout;
        loop {
            match (&mut (self.stream)).read(buf) {
                Ok(n) => {
                    if n > 0 {
                        self.in_frame = true;
                    }
                    return Ok(n);
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if self.shared.shutdown.load(Ordering::SeqCst) {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::ConnectionAborted,
                            "server shutting down",
                        ));
                    }
                    if self.in_frame && Instant::now() >= deadline {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::TimedOut,
                            "no progress within io_timeout",
                        ));
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

/// Submit one engine-bound job under the connection's in-flight quota:
/// reserve a slot, build the job (resolving query specs), enqueue it.
/// Any refusal — quota, resolution, queue admission — hands the slot back
/// and answers inline; the connection always survives.
fn submit_job(
    shared: &Arc<Shared>,
    quota: &ConnQuota,
    build: impl FnOnce(mpsc::Sender<Response>) -> Result<Job, Box<Response>>,
) -> Pending {
    if !quota.try_reserve() {
        shared
            .counters
            .quota_rejections
            .fetch_add(1, Ordering::Relaxed);
        return Pending::Ready(Box::new(Response::Error {
            code: ErrorCode::Busy,
            message: format!(
                "in-flight quota ({} requests per connection) reached; retry later",
                quota.max_in_flight
            ),
            offset: None,
        }));
    }
    let (reply, rx) = mpsc::channel();
    match build(reply).and_then(|job| shared.enqueue(job)) {
        Ok(()) => Pending::Waiting(rx),
        Err(error) => {
            quota.release();
            Pending::Ready(error)
        }
    }
}

/// Handle one decoded request on the reader thread.  Cheap requests are
/// answered inline ([`Pending::Ready`]); engine work is enqueued for the
/// dispatcher and owed through a reply channel.  `None` means the
/// connection should close (writer already owed nothing more).
fn handle_request(shared: &Arc<Shared>, quota: &ConnQuota, request: Request) -> Option<Pending> {
    match request {
        Request::Ping => Some(Pending::Ready(Box::new(Response::Pong))),
        Request::Stats => Some(Pending::Ready(Box::new(Response::Stats(shared.stats())))),
        Request::Shutdown => {
            // Acknowledge first so the requester gets a clean answer, then
            // flip the flag: accept stops, queued work drains, the caller's
            // `Server::shutdown` (or the daemon main loop) saves plans.
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.queue_signal.notify_all();
            Some(Pending::Ready(Box::new(Response::ShuttingDown)))
        }
        Request::Register { query } => {
            let plan = match shared.resolve(QuerySpec::Inline(query)) {
                Ok(plan) => plan,
                Err(error) => return Some(Pending::Ready(error)),
            };
            let id = shared.next_query_id.fetch_add(1, Ordering::Relaxed);
            let fingerprint = plan.fingerprint();
            shared
                .registered
                .lock()
                .expect("registered map lock")
                .insert(id, plan);
            Some(Pending::Ready(Box::new(Response::Registered {
                id,
                fingerprint,
            })))
        }
        Request::Decide { query, database } => Some(submit_job(shared, quota, |reply| {
            Ok(Job::Decide {
                query: shared.resolve(query)?,
                database,
                reply,
            })
        })),
        Request::Count { query, database } => Some(submit_job(shared, quota, |reply| {
            Ok(Job::Count {
                query: shared.resolve(query)?,
                database,
                reply,
            })
        })),
        Request::DecideBatch { items } => Some(submit_job(shared, quota, |reply| {
            Ok(Job::DecideBatch {
                items: resolve_items(shared, items)?,
                reply,
            })
        })),
        Request::CountBatch { items } => Some(submit_job(shared, quota, |reply| {
            Ok(Job::CountBatch {
                items: resolve_items(shared, items)?,
                reply,
            })
        })),
        Request::CountAnswers { query, database } => Some(submit_job(shared, quota, |reply| {
            validate_answer_query(&query)?;
            Ok(Job::CountAnswers {
                query,
                database,
                reply,
            })
        })),
        Request::Answers {
            query,
            database,
            offset,
            limit,
        } => Some(submit_job(shared, quota, |reply| {
            validate_answer_query(&query)?;
            if limit > MAX_ANSWER_PAGE_LIMIT {
                return Err(Box::new(Response::Error {
                    code: ErrorCode::Malformed,
                    message: format!(
                        "answer page limit {limit} exceeds the {MAX_ANSWER_PAGE_LIMIT}-row \
                         maximum; request further pages instead"
                    ),
                    offset: None,
                }));
            }
            Ok(Job::Answers {
                query,
                database,
                offset,
                limit: limit as usize,
                reply,
            })
        })),
    }
}

/// The engine's answer entry points panic on malformed queries by design
/// (boundary validation is the caller's job) — this is that boundary: a
/// query whose atoms don't square with its declared variables is refused
/// with a typed [`ErrorCode::Malformed`] and the connection survives.
fn validate_answer_query(query: &ConjunctiveQuery) -> Result<(), Box<Response>> {
    query.canonical_structure().map(|_| ()).map_err(|e| {
        Box::new(Response::Error {
            code: ErrorCode::Malformed,
            message: format!("invalid query: {e}"),
            offset: None,
        })
    })
}

fn resolve_items(
    shared: &Arc<Shared>,
    items: Vec<(QuerySpec, Structure)>,
) -> Result<Vec<(Arc<PreparedQuery>, Structure)>, Box<Response>> {
    items
        .into_iter()
        .map(|(spec, database)| Ok((shared.resolve(spec)?, database)))
        .collect()
}

/// Writer thread: emit responses in request order, resolving dispatcher
/// promises as they land.  Each resolved promise releases one of the
/// connection's in-flight quota slots.  A write failure (or a reply
/// channel whose dispatcher side vanished) shuts the socket down, which
/// unblocks the reader.
fn write_loop(
    shared: &Arc<Shared>,
    mut stream: TcpStream,
    pending: mpsc::Receiver<Pending>,
    in_flight: &AtomicUsize,
) {
    let _ = stream.set_write_timeout(Some(shared.config.io_timeout));
    while let Ok(next) = pending.recv() {
        let response = match next {
            Pending::Ready(r) => *r,
            Pending::Waiting(rx) => {
                let answer = rx.recv().unwrap_or(Response::Error {
                    code: ErrorCode::Internal,
                    message: "request dropped during dispatch".to_string(),
                    offset: None,
                });
                in_flight.fetch_sub(1, Ordering::AcqRel);
                answer
            }
        };
        if write_response(&mut stream, &response).is_err() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
            // Keep draining promises so dispatcher sends stay non-blocking
            // no-ops rather than piling into a disconnected channel error
            // path mid-batch.
            for rest in pending.iter() {
                if let Pending::Waiting(rx) = rest {
                    let _ = rx.recv();
                    in_flight.fetch_sub(1, Ordering::AcqRel);
                }
            }
            return;
        }
    }
}

/// Dispatcher: drain queued jobs (up to `coalesce_limit` per round),
/// partition singletons by kind, and answer each round through the
/// engine's batch fan-outs.  Exits only when shutdown is flagged *and* the
/// queue is verifiably empty under the lock — every admitted job is
/// answered.
fn dispatcher_loop(shared: &Arc<Shared>) {
    loop {
        let jobs = {
            let mut queue = shared.queue.lock().expect("job queue lock");
            loop {
                if !queue.is_empty() {
                    let take = queue.len().min(shared.config.coalesce_limit.max(1));
                    break queue.drain(..take).collect::<Vec<Job>>();
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let (q, _timeout) = shared
                    .queue_signal
                    .wait_timeout(queue, POLL_QUANTUM)
                    .expect("job queue lock");
                queue = q;
            }
        };
        run_round(shared, jobs);
    }
}

/// Execute one drained round: coalesce singleton decides into one
/// `solve_batch_instances` call, singleton counts into one `count_batch`
/// call, and run explicit batches — and the answer jobs of protocol
/// version 4 — as their own fan-outs.
fn run_round(shared: &Arc<Shared>, jobs: Vec<Job>) {
    let mut decides: Vec<(Arc<PreparedQuery>, Structure, mpsc::Sender<Response>)> = Vec::new();
    let mut counts: Vec<(Arc<PreparedQuery>, Structure, mpsc::Sender<Response>)> = Vec::new();
    let mut batches: Vec<Job> = Vec::new();
    for job in jobs {
        match job {
            Job::Decide {
                query,
                database,
                reply,
            } => decides.push((query, database, reply)),
            Job::Count {
                query,
                database,
                reply,
            } => counts.push((query, database, reply)),
            batch => batches.push(batch),
        }
    }

    if !decides.is_empty() {
        shared
            .counters
            .dispatch_rounds
            .fetch_add(1, Ordering::Relaxed);
        if decides.len() > 1 {
            shared
                .counters
                .coalesced_requests
                .fetch_add(decides.len() as u64, Ordering::Relaxed);
        }
        let reports = solve_prepared_batch(shared, &decides);
        for ((_, _, reply), report) in decides.iter().zip(reports) {
            let _ = reply.send(report);
        }
    }
    if !counts.is_empty() {
        shared
            .counters
            .dispatch_rounds
            .fetch_add(1, Ordering::Relaxed);
        if counts.len() > 1 {
            shared
                .counters
                .coalesced_requests
                .fetch_add(counts.len() as u64, Ordering::Relaxed);
        }
        let reports = count_prepared_batch(shared, &counts);
        for ((_, _, reply), report) in counts.iter().zip(reports) {
            let _ = reply.send(report);
        }
    }
    for batch in batches {
        shared
            .counters
            .dispatch_rounds
            .fetch_add(1, Ordering::Relaxed);
        match batch {
            Job::DecideBatch { items, reply } => {
                let singles: Vec<(Arc<PreparedQuery>, Structure, mpsc::Sender<Response>)> = items
                    .into_iter()
                    .map(|(q, d)| (q, d, reply.clone()))
                    .collect();
                let reports: Vec<Response> = solve_prepared_batch(shared, &singles);
                let mut out = Vec::with_capacity(reports.len());
                for r in reports {
                    match r {
                        Response::Decision(report) => out.push(report),
                        other => {
                            let _ = reply.send(other);
                            return;
                        }
                    }
                }
                let _ = reply.send(Response::DecideBatch(out));
            }
            Job::CountBatch { items, reply } => {
                let singles: Vec<(Arc<PreparedQuery>, Structure, mpsc::Sender<Response>)> = items
                    .into_iter()
                    .map(|(q, d)| (q, d, reply.clone()))
                    .collect();
                let reports: Vec<Response> = count_prepared_batch(shared, &singles);
                let mut out = Vec::with_capacity(reports.len());
                for r in reports {
                    match r {
                        Response::Count(report) => out.push(report),
                        other => {
                            let _ = reply.send(other);
                            return;
                        }
                    }
                }
                let _ = reply.send(Response::CountBatch(out));
            }
            Job::CountAnswers {
                query,
                database,
                reply,
            } => {
                let result = catch_unwind(AssertUnwindSafe(|| {
                    Response::AnswerCount(shared.engine.count_answers(&query, &database))
                }));
                let _ = reply.send(result.unwrap_or_else(|_| Response::Error {
                    code: ErrorCode::Internal,
                    message: "answer counting failed".to_string(),
                    offset: None,
                }));
            }
            Job::Answers {
                query,
                database,
                offset,
                limit,
                reply,
            } => {
                let result = catch_unwind(AssertUnwindSafe(|| {
                    Response::Answers(shared.engine.answers(&query, &database, offset, limit))
                }));
                let _ = reply.send(result.unwrap_or_else(|_| Response::Error {
                    code: ErrorCode::Internal,
                    message: "answer enumeration failed".to_string(),
                    offset: None,
                }));
            }
            Job::Decide { .. } | Job::Count { .. } => unreachable!("partitioned above"),
        }
    }
}

/// One decide fan-out over already-prepared plans.  Panics inside the
/// engine (pathological databases) surface as [`ErrorCode::Internal`]
/// responses, never a dead dispatcher.
fn solve_prepared_batch(
    shared: &Arc<Shared>,
    items: &[(Arc<PreparedQuery>, Structure, mpsc::Sender<Response>)],
) -> Vec<Response> {
    let result = catch_unwind(AssertUnwindSafe(|| {
        items
            .iter()
            .map(|(plan, database, _)| {
                Response::Decision(shared.engine.solve_prepared(plan, database))
            })
            .collect::<Vec<Response>>()
    }));
    result.unwrap_or_else(|_| {
        items
            .iter()
            .map(|_| Response::Error {
                code: ErrorCode::Internal,
                message: "decision evaluation failed".to_string(),
                offset: None,
            })
            .collect()
    })
}

/// One count fan-out over already-prepared plans.
fn count_prepared_batch(
    shared: &Arc<Shared>,
    items: &[(Arc<PreparedQuery>, Structure, mpsc::Sender<Response>)],
) -> Vec<Response> {
    let result = catch_unwind(AssertUnwindSafe(|| {
        items
            .iter()
            .map(|(plan, database, _)| {
                Response::Count(shared.engine.count_prepared(plan, database))
            })
            .collect::<Vec<Response>>()
    }));
    result.unwrap_or_else(|_| {
        items
            .iter()
            .map(|_| Response::Error {
                code: ErrorCode::Internal,
                message: "count evaluation failed".to_string(),
                offset: None,
            })
            .collect()
    })
}

/// One-line server-side log (stderr, so stdout stays parseable for the
/// daemon's readiness line).
fn log_line(message: &str) {
    eprintln!("cq-service: {message}");
}
