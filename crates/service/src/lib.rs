//! # cq-service — the query-service front-end
//!
//! A long-lived TCP server over the [`cq_core::Engine`], exposing
//! register / decide / count / batch — and, since protocol version 4, the
//! free-variable answer requests (count answers, paged answer enumeration
//! with a server-enforced page-size ceiling) — over a length-prefixed,
//! checksummed binary protocol built from the same fuzz-hardened codec
//! ([`cq_structures::codec`]) the plan store uses.
//!
//! Three layers:
//!
//! * [`protocol`] — the wire format: frames (u32 length, version byte,
//!   payload, FNV-1a checksum), [`protocol::Request`] /
//!   [`protocol::Response`] codecs, and hostile-input rejection (oversized
//!   frames refused before allocation, checksums verified before decode,
//!   payload decode errors reported with their byte offset).
//! * [`server`] — the service itself: nonblocking accept loop with a
//!   connection limit, per-connection reader/writer threads (responses
//!   pipeline in request order), a bounded job queue with
//!   [`protocol::ErrorCode::Busy`] backpressure, a dispatcher that
//!   coalesces concurrent singleton requests into the engine's batch
//!   fan-outs, and a warm-start / save-on-eviction / save-on-shutdown
//!   plan-store lifecycle.
//! * [`client`] — a blocking client with both strict request/response
//!   calls and raw send/receive pipelining.
//!
//! Everything is hand-rolled on `std` (`TcpListener`, threads, channels);
//! there are no third-party dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError};
pub use protocol::{
    ErrorCode, FrameError, QuerySpec, Request, Response, ServerCounters, ServiceStats,
    DEFAULT_MAX_FRAME_LEN, MAX_ANSWER_PAGE_LIMIT, PROTOCOL_VERSION,
};
pub use server::{Server, ServiceConfig, ShutdownReport};
