//! A blocking client for the query service.
//!
//! One [`Client`] wraps one TCP connection.  The simple methods
//! ([`Client::decide`], [`Client::count`], …) are strict request/response;
//! for pipelining, send several requests with [`Client::send`] and collect
//! the answers — in request order — with [`Client::receive`].

use crate::protocol::{
    read_response, write_request, ErrorCode, FrameError, QuerySpec, Request, Response,
    ServiceStats, DEFAULT_MAX_FRAME_LEN,
};
use cq_core::{AnswerCountReport, AnswerPage, CountReport, EngineReport};
use cq_structures::codec::DecodeErrorAt;
use cq_structures::{ConjunctiveQuery, Structure};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The transport or framing layer failed (disconnect, timeout,
    /// corrupt frame).
    Frame(FrameError),
    /// A clean frame arrived but its payload did not decode as a
    /// response (protocol mismatch).
    Decode(DecodeErrorAt),
    /// The server answered with an error response.
    Server {
        /// The server's error code.
        code: ErrorCode,
        /// The server's message.
        message: String,
        /// For malformed-request errors: the byte offset the server's
        /// decoder reported.
        offset: Option<u64>,
    },
    /// The server answered, but with a response of the wrong kind for the
    /// request that was sent.
    UnexpectedResponse(Box<Response>),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Frame(e) => write!(f, "transport error: {e}"),
            ClientError::Decode(e) => write!(f, "undecodable response: {e}"),
            ClientError::Server {
                code,
                message,
                offset,
            } => {
                write!(f, "server error ({code:?}): {message}")?;
                if let Some(offset) = offset {
                    write!(f, " (at request byte offset {offset})")?;
                }
                Ok(())
            }
            ClientError::UnexpectedResponse(r) => {
                write!(f, "response kind does not match the request: {r:?}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> ClientError {
        ClientError::Frame(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Frame(FrameError::Io(e))
    }
}

/// A connection to a running query service.
pub struct Client {
    stream: TcpStream,
    max_frame_len: usize,
}

impl Client {
    /// Connect with no read deadline (calls block until the server
    /// answers).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        Client::connect_with_timeout(addr, None)
    }

    /// Connect with a read deadline per response (recommended in tests so
    /// a wedged server fails the test instead of hanging it).
    pub fn connect_with_timeout(
        addr: impl ToSocketAddrs,
        read_timeout: Option<Duration>,
    ) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(read_timeout)?;
        Ok(Client {
            stream,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
        })
    }

    /// Cap on response frames this client will accept.
    pub fn set_max_frame_len(&mut self, max_frame_len: usize) {
        self.max_frame_len = max_frame_len;
    }

    /// Pipelining: ship a request without waiting for its answer.  The
    /// server replies in request order, so `n` sends followed by `n`
    /// [`Client::receive`] calls match up positionally.
    pub fn send(&mut self, request: &Request) -> Result<(), ClientError> {
        write_request(&mut self.stream, request)?;
        Ok(())
    }

    /// Pipelining: read the next in-order response.
    pub fn receive(&mut self) -> Result<Response, ClientError> {
        match read_response(&mut self.stream, self.max_frame_len)? {
            Ok(response) => Ok(response),
            Err(decode_err) => Err(ClientError::Decode(decode_err)),
        }
    }

    /// Strict request/response round trip; server-side errors become
    /// [`ClientError::Server`].
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        self.send(request)?;
        match self.receive()? {
            Response::Error {
                code,
                message,
                offset,
            } => Err(ClientError::Server {
                code,
                message,
                offset,
            }),
            response => Ok(response),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(ClientError::UnexpectedResponse(Box::new(other))),
        }
    }

    /// Register a query; returns `(id, fingerprint)`.  Use the id in
    /// [`QuerySpec::Registered`] to skip re-shipping (and re-preparing)
    /// the query on every request.
    pub fn register(&mut self, query: &Structure) -> Result<(u64, u64), ClientError> {
        match self.call(&Request::Register {
            query: query.clone(),
        })? {
            Response::Registered { id, fingerprint } => Ok((id, fingerprint)),
            other => Err(ClientError::UnexpectedResponse(Box::new(other))),
        }
    }

    /// Decide `p-HOM(query → database)`.
    pub fn decide(
        &mut self,
        query: QuerySpec,
        database: &Structure,
    ) -> Result<EngineReport, ClientError> {
        match self.call(&Request::Decide {
            query,
            database: database.clone(),
        })? {
            Response::Decision(report) => Ok(report),
            other => Err(ClientError::UnexpectedResponse(Box::new(other))),
        }
    }

    /// Count homomorphisms `query → database`.
    pub fn count(
        &mut self,
        query: QuerySpec,
        database: &Structure,
    ) -> Result<CountReport, ClientError> {
        match self.call(&Request::Count {
            query,
            database: database.clone(),
        })? {
            Response::Count(report) => Ok(report),
            other => Err(ClientError::UnexpectedResponse(Box::new(other))),
        }
    }

    /// Decide a batch in one round trip.
    pub fn decide_batch(
        &mut self,
        items: Vec<(QuerySpec, Structure)>,
    ) -> Result<Vec<EngineReport>, ClientError> {
        match self.call(&Request::DecideBatch { items })? {
            Response::DecideBatch(reports) => Ok(reports),
            other => Err(ClientError::UnexpectedResponse(Box::new(other))),
        }
    }

    /// Count a batch in one round trip.
    pub fn count_batch(
        &mut self,
        items: Vec<(QuerySpec, Structure)>,
    ) -> Result<Vec<CountReport>, ClientError> {
        match self.call(&Request::CountBatch { items })? {
            Response::CountBatch(reports) => Ok(reports),
            other => Err(ClientError::UnexpectedResponse(Box::new(other))),
        }
    }

    /// Count the distinct answers of a free-variable query (protocol
    /// version 4).
    pub fn count_answers(
        &mut self,
        query: &ConjunctiveQuery,
        database: &Structure,
    ) -> Result<AnswerCountReport, ClientError> {
        match self.call(&Request::CountAnswers {
            query: query.clone(),
            database: database.clone(),
        })? {
            Response::AnswerCount(report) => Ok(report),
            other => Err(ClientError::UnexpectedResponse(Box::new(other))),
        }
    }

    /// Fetch one page of a free-variable query's answers (protocol
    /// version 4): skip `offset` rows, return at most `limit` (the server
    /// refuses limits over
    /// [`MAX_ANSWER_PAGE_LIMIT`](crate::protocol::MAX_ANSWER_PAGE_LIMIT)).
    pub fn answers(
        &mut self,
        query: &ConjunctiveQuery,
        database: &Structure,
        offset: u64,
        limit: u64,
    ) -> Result<AnswerPage, ClientError> {
        match self.call(&Request::Answers {
            query: query.clone(),
            database: database.clone(),
            offset,
            limit,
        })? {
            Response::Answers(page) => Ok(page),
            other => Err(ClientError::UnexpectedResponse(Box::new(other))),
        }
    }

    /// Snapshot the server's engine + service counters.
    pub fn stats(&mut self) -> Result<ServiceStats, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(ClientError::UnexpectedResponse(Box::new(other))),
        }
    }

    /// Ask the server to shut down gracefully; returns once the server
    /// acknowledges (the drain + plan save happen after the ack).
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(ClientError::UnexpectedResponse(Box::new(other))),
        }
    }
}
