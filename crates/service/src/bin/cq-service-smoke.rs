//! CI smoke driver for the query service.
//!
//! ```text
//! cq-service-smoke --probe ADDR        # wait (≤15 s) for the server, ping it
//! cq-service-smoke --expect-cold ADDR  # drive traffic, differential vs
//!                                      # in-process engine, assert the boot
//!                                      # was cold (preparations > 0)
//! cq-service-smoke --expect-warm ADDR  # assert the boot was warm (plans
//!                                      # loaded, ZERO width DPs before the
//!                                      # first answer), then drive the same
//!                                      # traffic and re-check agreement
//! ```
//!
//! The traffic is deterministic (seeded workload generators), so the cold
//! run's saved plan store covers every query — including the counting
//! certificates — that the warm run will see.  Exit code 0 means every
//! assertion held; any disagreement or a wedged server exits 1 with a
//! message on stderr.

use cq_core::{Engine, EngineConfig};
use cq_service::{Client, QuerySpec};
use cq_workloads::{counting_traffic, repeated_query_traffic};
use std::time::Duration;

/// Generous per-response deadline: a wedged server fails the smoke job
/// instead of hanging CI.
const READ_TIMEOUT: Duration = Duration::from_secs(60);

fn usage() -> ! {
    eprintln!("usage: cq-service-smoke --probe ADDR | --expect-cold ADDR | --expect-warm ADDR");
    std::process::exit(2);
}

fn fail(message: &str) -> ! {
    eprintln!("cq-service-smoke: FAIL: {message}");
    std::process::exit(1);
}

fn connect(addr: &str) -> Client {
    match Client::connect_with_timeout(addr, Some(READ_TIMEOUT)) {
        Ok(client) => client,
        Err(e) => fail(&format!("cannot connect to {addr}: {e}")),
    }
}

/// Retry-connect until the server answers a ping (boot race) or 15 s pass.
fn probe(addr: &str) {
    let deadline = std::time::Instant::now() + Duration::from_secs(15);
    loop {
        if let Ok(mut client) = Client::connect_with_timeout(addr, Some(Duration::from_secs(5))) {
            if client.ping().is_ok() {
                println!("cq-service-smoke: probe ok ({addr})");
                return;
            }
        }
        if std::time::Instant::now() >= deadline {
            fail(&format!(
                "server at {addr} did not answer a ping within 15s"
            ));
        }
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// Drive the deterministic mixed workload through `client`, comparing
/// every answer bit-for-bit against a fresh in-process engine.  Returns
/// (decisions checked, counts checked).
fn drive_differential(client: &mut Client) -> (usize, usize) {
    let oracle = Engine::new(EngineConfig::default());

    // Decision traffic: registered handles for half the trace, inline
    // shipping for the other half, plus the whole trace again as one
    // explicit batch.
    let decide = repeated_query_traffic(3, 18, 2, 11);
    let mut ids = Vec::with_capacity(decide.queries.len());
    for query in &decide.queries {
        match client.register(query) {
            Ok((id, _fingerprint)) => ids.push(id),
            Err(e) => fail(&format!("register: {e}")),
        }
    }
    let mut decisions = 0usize;
    for (i, &(q, d)) in decide.trace.iter().enumerate() {
        let spec = if i % 2 == 0 {
            QuerySpec::Registered(ids[q])
        } else {
            QuerySpec::Inline(decide.queries[q].clone())
        };
        let got = match client.decide(spec, &decide.databases[d]) {
            Ok(report) => report,
            Err(e) => fail(&format!("decide #{i}: {e}")),
        };
        let want = oracle.solve(&decide.queries[q], &decide.databases[d]);
        if got != want {
            fail(&format!(
                "decide #{i} disagrees with the in-process engine: {got:?} != {want:?}"
            ));
        }
        decisions += 1;
    }
    let batch_items: Vec<(QuerySpec, cq_structures::Structure)> = decide
        .trace
        .iter()
        .map(|&(q, d)| (QuerySpec::Registered(ids[q]), decide.databases[d].clone()))
        .collect();
    let batch = match client.decide_batch(batch_items) {
        Ok(reports) => reports,
        Err(e) => fail(&format!("decide_batch: {e}")),
    };
    for (i, (&(q, d), got)) in decide.trace.iter().zip(&batch).enumerate() {
        let want = oracle.solve(&decide.queries[q], &decide.databases[d]);
        if *got != want {
            fail(&format!(
                "decide_batch item #{i} disagrees: {got:?} != {want:?}"
            ));
        }
        decisions += 1;
    }

    // Counting traffic: singleton counts checked against both the oracle
    // engine and the workload's closed forms, then the trace as a batch.
    let count = counting_traffic(&[3, 4, 5], 2, 13);
    let mut counts = 0usize;
    for (i, &(q, d)) in count.trace.iter().enumerate() {
        let got = match client.count(
            QuerySpec::Inline(count.queries[q].clone()),
            &count.databases[d],
        ) {
            Ok(report) => report,
            Err(e) => fail(&format!("count #{i}: {e}")),
        };
        let want = oracle.count_instance(&count.queries[q], &count.databases[d]);
        if got != want {
            fail(&format!(
                "count #{i} disagrees with the in-process engine: {got:?} != {want:?}"
            ));
        }
        if got.count != count.expected[i] {
            fail(&format!(
                "count #{i} disagrees with the closed form: {} != {}",
                got.count, count.expected[i]
            ));
        }
        counts += 1;
    }
    let batch_items: Vec<(QuerySpec, cq_structures::Structure)> = count
        .trace
        .iter()
        .map(|&(q, d)| {
            (
                QuerySpec::Inline(count.queries[q].clone()),
                count.databases[d].clone(),
            )
        })
        .collect();
    let batch = match client.count_batch(batch_items) {
        Ok(reports) => reports,
        Err(e) => fail(&format!("count_batch: {e}")),
    };
    for (i, (&expected, got)) in count.expected.iter().zip(&batch).enumerate() {
        if got.count != expected {
            fail(&format!(
                "count_batch item #{i} disagrees with the closed form: {} != {expected}",
                got.count
            ));
        }
        counts += 1;
    }

    (decisions, counts)
}

fn expect_cold(addr: &str) {
    let mut client = connect(addr);
    let (decisions, counts) = drive_differential(&mut client);
    let stats = match client.stats() {
        Ok(stats) => stats,
        Err(e) => fail(&format!("stats: {e}")),
    };
    if stats.prep.preparations == 0 {
        fail("expected a cold boot, but the server prepared nothing (stale plan store?)");
    }
    println!(
        "cq-service-smoke: cold ok — {decisions} decisions and {counts} counts agree; \
         preparations={}, width DPs={}",
        stats.prep.preparations,
        stats.prep.treewidth_calls + stats.prep.pathwidth_calls + stats.prep.treedepth_calls,
    );
}

fn expect_warm(addr: &str) {
    let mut client = connect(addr);
    // The gate: BEFORE the first answer, the warm-started server must have
    // loaded its plans without running a single width DP or core
    // computation.
    let boot = match client.stats() {
        Ok(stats) => stats.prep,
        Err(e) => fail(&format!("stats: {e}")),
    };
    if boot.plans_loaded == 0 {
        fail("expected a warm boot, but no plans were loaded");
    }
    let width_dps = boot.treewidth_calls + boot.pathwidth_calls + boot.treedepth_calls;
    if boot.preparations != 0 || width_dps != 0 || boot.core_computations != 0 {
        fail(&format!(
            "warm boot ran work it should have loaded: preparations={}, width DPs={width_dps}, \
             cores={}",
            boot.preparations, boot.core_computations
        ));
    }
    let (decisions, counts) = drive_differential(&mut client);
    // The cold run drove the identical workload (counting included), so
    // every plan — with counting certificates — came from the store: the
    // traffic itself must not have prepared anything either.
    let after = match client.stats() {
        Ok(stats) => stats.prep,
        Err(e) => fail(&format!("stats: {e}")),
    };
    let width_dps = after.treewidth_calls + after.pathwidth_calls + after.treedepth_calls;
    if after.preparations != 0 || width_dps != 0 {
        fail(&format!(
            "warm traffic re-prepared plans the store should cover: preparations={}, \
             width DPs={width_dps}",
            after.preparations
        ));
    }
    println!(
        "cq-service-smoke: warm ok — {} plans loaded, zero width DPs; \
         {decisions} decisions and {counts} counts agree",
        after.plans_loaded
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [mode, addr] if mode == "--probe" => probe(addr),
        [mode, addr] if mode == "--expect-cold" => expect_cold(addr),
        [mode, addr] if mode == "--expect-warm" => expect_warm(addr),
        _ => usage(),
    }
}
