//! The query-service daemon: boot an engine, serve the binary protocol
//! over TCP, shut down gracefully on SIGTERM/SIGINT or a protocol
//! `Shutdown` request.
//!
//! ```text
//! cq-serviced [--addr HOST:PORT] [--plan-store PATH]
//!             [--max-connections N] [--queue-depth N] [--coalesce-limit N]
//!             [--max-in-flight N] [--max-requests-per-second N]
//! ```
//!
//! Prints `cq-serviced listening on <addr>` on stdout once the listener is
//! bound (the CI smoke job waits for this line), then blocks until a
//! shutdown signal arrives, drains, saves plans, and reports what it saved.

use cq_core::{Engine, EngineConfig};
use cq_service::{Server, ServiceConfig};
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Set by the signal handler; the main loop polls it.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

/// The libc `signal(2)` entry point.  A typed handler (not a raw usize)
/// keeps the registration honest; storing to a static atomic is
/// async-signal-safe, which is all the handler does.
type SigHandler = extern "C" fn(i32);
extern "C" {
    fn signal(signum: i32, handler: SigHandler) -> usize;
}

extern "C" fn on_signal(_signum: i32) {
    SIGNALLED.store(true, Ordering::SeqCst);
}

fn usage() -> ! {
    eprintln!(
        "usage: cq-serviced [--addr HOST:PORT] [--plan-store PATH] \
         [--max-connections N] [--queue-depth N] [--coalesce-limit N] \
         [--max-in-flight N] [--max-requests-per-second N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut addr = "127.0.0.1:7411".to_string();
    let mut config = ServiceConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--addr" => addr = value(),
            "--plan-store" => config.plan_store = Some(value().into()),
            "--max-connections" => {
                config.max_connections = value().parse().unwrap_or_else(|_| usage())
            }
            "--queue-depth" => config.queue_depth = value().parse().unwrap_or_else(|_| usage()),
            "--coalesce-limit" => {
                config.coalesce_limit = value().parse().unwrap_or_else(|_| usage())
            }
            "--max-in-flight" => {
                config.max_in_flight_per_connection = value().parse().unwrap_or_else(|_| usage())
            }
            "--max-requests-per-second" => {
                config.max_requests_per_second = value().parse().unwrap_or_else(|_| usage())
            }
            _ => usage(),
        }
    }

    unsafe {
        let _ = signal(SIGTERM, on_signal);
        let _ = signal(SIGINT, on_signal);
    }

    let engine = Engine::new(EngineConfig::default());
    let server = match Server::start(engine, &addr, config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("cq-serviced: failed to start on {addr}: {e}");
            std::process::exit(1);
        }
    };
    if let Some(summary) = server.warm_start() {
        println!(
            "cq-serviced warm start: {} plans loaded, {} rejected",
            summary.loaded, summary.rejected
        );
    }
    println!("cq-serviced listening on {}", server.local_addr());
    let _ = std::io::stdout().flush();

    while !SIGNALLED.load(Ordering::SeqCst) && !server.is_shutting_down() {
        std::thread::sleep(Duration::from_millis(50));
    }

    match server.shutdown() {
        Ok(report) => {
            println!("cq-serviced stopped: {} plans saved", report.plans_saved);
        }
        Err(e) => {
            eprintln!("cq-serviced: shutdown failed: {e}");
            std::process::exit(1);
        }
    }
}
