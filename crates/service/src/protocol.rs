//! The wire protocol of the query service: checksummed, length-prefixed
//! frames carrying [`Request`] / [`Response`] values encoded with the same
//! fuzz-hardened [`cq_structures::codec`] the plan store uses.
//!
//! # Frame format
//!
//! ```text
//! ┌──────────────┬───────────────────────────────────────────────────────┐
//! │ body length  │ u32 LE — length of the body (version byte + payload)  │
//! │ body         │ u8 protocol version (currently 4)                     │
//! │              │ payload: one encoded Request or Response              │
//! │ checksum     │ u64 LE — FNV-1a over the body                         │
//! └──────────────┴───────────────────────────────────────────────────────┘
//! ```
//!
//! # Trust model
//!
//! A frame is **data, not authority** — the same stance as
//! [`cq_core::persist`].  The body length is validated against the
//! configured maximum *before* any allocation, the checksum is verified
//! before the payload is decoded, the version byte gates the decoder, and
//! payload decoding goes through [`decode_from_slice_at`], whose failures
//! carry the byte offset the reader reached — echoed back to the client in
//! [`Response::Error`] and logged server-side, so a rejected frame is
//! diagnosable.  No decoder in this chain panics or allocates
//! proportionally to attacker-claimed sizes.

use cq_core::{
    AnswerCountReport, AnswerPage, CacheStats, CountReport, EngineReport, IndexStats, PrepStats,
};
use cq_structures::codec::{
    decode_from_slice_at, encode_to_vec, fnv1a64, Decode, DecodeError, DecodeErrorAt, Encode,
    Reader,
};
use cq_structures::{ConjunctiveQuery, Structure};
use std::fmt;
use std::io::{Read, Write};

/// The one protocol version this build speaks.  Version 2 changed the
/// encoding of [`CountReport`]'s count to the tagged
/// [`cq_core::CountOutcome`] (exact-or-overflow) layout.  Version 3 grew
/// the stats payload: [`ServerCounters::quota_rejections`] and the index
/// cache's hash-compute meter ([`IndexStats`]).  Version 4 added the
/// free-variable answer requests ([`Request::CountAnswers`],
/// [`Request::Answers`]) and their responses.
pub const PROTOCOL_VERSION: u8 = 4;

/// The largest `limit` the server accepts in a [`Request::Answers`] page.
/// A larger limit is refused with [`ErrorCode::Malformed`] — pagination
/// exists precisely so one request can never demand an unbounded
/// materialization; ask for the next page instead.
pub const MAX_ANSWER_PAGE_LIMIT: u64 = 1024;

/// Default ceiling on a frame body (version byte + payload).  Generous for
/// the structures this workspace trafficks in, tiny next to what a hostile
/// u32 length prefix could claim.
pub const DEFAULT_MAX_FRAME_LEN: usize = 8 * 1024 * 1024;

/// Errors of the frame layer (transport + envelope).  Payload-level decode
/// problems are *not* frame errors: a frame that checksums clean but holds
/// a malformed request leaves the stream in a known state, so the server
/// answers [`Response::Error`] and keeps the connection.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying socket operation failed (includes timeouts).
    Io(std::io::Error),
    /// Clean EOF on a frame boundary — the peer closed normally.
    Closed,
    /// EOF in the middle of a frame.
    Truncated,
    /// The declared body length is zero (no room for the version byte).
    Empty,
    /// The declared body length exceeds the configured maximum.  Raised
    /// before any allocation.
    TooLarge {
        /// The length the frame header declared.
        declared: u64,
        /// The configured ceiling.
        max: usize,
    },
    /// The body checksum did not match.
    BadChecksum,
    /// The version byte is not [`PROTOCOL_VERSION`].
    UnsupportedVersion {
        /// The version byte found.
        found: u8,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame I/O error: {e}"),
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Truncated => write!(f, "connection closed mid-frame"),
            FrameError::Empty => write!(f, "zero-length frame body"),
            FrameError::TooLarge { declared, max } => {
                write!(
                    f,
                    "frame body of {declared} bytes exceeds the {max}-byte limit"
                )
            }
            FrameError::BadChecksum => write!(f, "frame checksum mismatch"),
            FrameError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported protocol version {found} (this build speaks {PROTOCOL_VERSION})"
                )
            }
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> FrameError {
        FrameError::Io(e)
    }
}

/// Write one frame (header, version byte, payload, checksum) in a single
/// buffered `write_all`.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let body_len = payload.len() + 1;
    let mut frame = Vec::with_capacity(4 + body_len + 8);
    frame.extend_from_slice(&(body_len as u32).to_le_bytes());
    frame.push(PROTOCOL_VERSION);
    frame.extend_from_slice(payload);
    let checksum = fnv1a64(&frame[4..4 + body_len]);
    frame.extend_from_slice(&checksum.to_le_bytes());
    w.write_all(&frame)
}

/// Read one frame and return its payload (version byte stripped).
///
/// The declared body length is checked against `max_frame_len` **before**
/// the body buffer is sized, the checksum is verified before the version
/// byte is interpreted, and a clean EOF before the first header byte is
/// [`FrameError::Closed`] (any later EOF is [`FrameError::Truncated`]).
pub fn read_frame(r: &mut impl Read, max_frame_len: usize) -> Result<Vec<u8>, FrameError> {
    let mut header = [0u8; 4];
    read_exact_or_eof(r, &mut header, true)?;
    let declared = u32::from_le_bytes(header) as u64;
    if declared == 0 {
        return Err(FrameError::Empty);
    }
    if declared > max_frame_len as u64 {
        return Err(FrameError::TooLarge {
            declared,
            max: max_frame_len,
        });
    }
    let body_len = declared as usize;
    let mut body = vec![0u8; body_len];
    read_exact_or_eof(r, &mut body, false)?;
    let mut checksum = [0u8; 8];
    read_exact_or_eof(r, &mut checksum, false)?;
    if fnv1a64(&body) != u64::from_le_bytes(checksum) {
        return Err(FrameError::BadChecksum);
    }
    let version = body[0];
    if version != PROTOCOL_VERSION {
        return Err(FrameError::UnsupportedVersion { found: version });
    }
    body.remove(0);
    Ok(body)
}

/// `read_exact`, but a clean EOF before the first byte of the first read is
/// [`FrameError::Closed`] (a peer hanging up between frames) while any
/// other shortfall is [`FrameError::Truncated`].
fn read_exact_or_eof(
    r: &mut impl Read,
    buf: &mut [u8],
    at_frame_boundary: bool,
) -> Result<(), FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if at_frame_boundary && filled == 0 {
                    FrameError::Closed
                } else {
                    FrameError::Truncated
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(())
}

/// How a decide/count request names its query: a handle from an earlier
/// [`Request::Register`], or the full structure inline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuerySpec {
    /// A server-issued query id (amortizes preparation across requests).
    Registered(u64),
    /// The query structure shipped with the request.
    Inline(Structure),
}

impl Encode for QuerySpec {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            QuerySpec::Registered(id) => {
                out.push(0);
                id.encode(out);
            }
            QuerySpec::Inline(s) => {
                out.push(1);
                s.encode(out);
            }
        }
    }
}

impl Decode for QuerySpec {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.read_u8()? {
            0 => Ok(QuerySpec::Registered(u64::decode(r)?)),
            1 => Ok(QuerySpec::Inline(Structure::decode(r)?)),
            tag => Err(DecodeError::BadTag {
                what: "QuerySpec",
                tag,
            }),
        }
    }
}

/// A client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Register a query: the server prepares it once (core, width DPs,
    /// certificates) and returns a [`Response::Registered`] handle.
    Register {
        /// The query structure to prepare.
        query: Structure,
    },
    /// Decide `p-HOM(query → database)`.
    Decide {
        /// The query (registered handle or inline).
        query: QuerySpec,
        /// The database instance.
        database: Structure,
    },
    /// Count homomorphisms `query → database`.
    Count {
        /// The query (registered handle or inline).
        query: QuerySpec,
        /// The database instance.
        database: Structure,
    },
    /// Decide a whole batch in one round trip (fanned out over the
    /// engine's worker pool).
    DecideBatch {
        /// The (query, database) pairs, answered in order.
        items: Vec<(QuerySpec, Structure)>,
    },
    /// Count a whole batch in one round trip.
    CountBatch {
        /// The (query, database) pairs, answered in order.
        items: Vec<(QuerySpec, Structure)>,
    },
    /// Snapshot the server's engine and service counters.
    Stats,
    /// Ask the server to shut down gracefully (drain, save plans, exit).
    Shutdown,
    /// Count the distinct answers of a free-variable query (added in
    /// protocol version 4).  The query ships inline — free-variable lists
    /// live on the [`ConjunctiveQuery`], which registered handles (plain
    /// structures) do not carry.
    CountAnswers {
        /// The conjunctive query, with its free variables marked.
        query: ConjunctiveQuery,
        /// The database instance.
        database: Structure,
    },
    /// One page of a free-variable query's answers (added in protocol
    /// version 4): skip `offset` rows, return at most `limit`.
    Answers {
        /// The conjunctive query, with its free variables marked.
        query: ConjunctiveQuery,
        /// The database instance.
        database: Structure,
        /// Rows of the enumeration to skip.
        offset: u64,
        /// Maximum rows returned; must be ≤ [`MAX_ANSWER_PAGE_LIMIT`] or
        /// the server refuses with [`ErrorCode::Malformed`].
        limit: u64,
    },
}

impl Encode for Request {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Request::Ping => out.push(0),
            Request::Register { query } => {
                out.push(1);
                query.encode(out);
            }
            Request::Decide { query, database } => {
                out.push(2);
                query.encode(out);
                database.encode(out);
            }
            Request::Count { query, database } => {
                out.push(3);
                query.encode(out);
                database.encode(out);
            }
            Request::DecideBatch { items } => {
                out.push(4);
                items.encode(out);
            }
            Request::CountBatch { items } => {
                out.push(5);
                items.encode(out);
            }
            Request::Stats => out.push(6),
            Request::Shutdown => out.push(7),
            Request::CountAnswers { query, database } => {
                out.push(8);
                query.encode(out);
                database.encode(out);
            }
            Request::Answers {
                query,
                database,
                offset,
                limit,
            } => {
                out.push(9);
                query.encode(out);
                database.encode(out);
                offset.encode(out);
                limit.encode(out);
            }
        }
    }
}

impl Decode for Request {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.read_u8()? {
            0 => Ok(Request::Ping),
            1 => Ok(Request::Register {
                query: Structure::decode(r)?,
            }),
            2 => Ok(Request::Decide {
                query: QuerySpec::decode(r)?,
                database: Structure::decode(r)?,
            }),
            3 => Ok(Request::Count {
                query: QuerySpec::decode(r)?,
                database: Structure::decode(r)?,
            }),
            4 => Ok(Request::DecideBatch {
                items: Vec::decode(r)?,
            }),
            5 => Ok(Request::CountBatch {
                items: Vec::decode(r)?,
            }),
            6 => Ok(Request::Stats),
            7 => Ok(Request::Shutdown),
            8 => Ok(Request::CountAnswers {
                query: ConjunctiveQuery::decode(r)?,
                database: Structure::decode(r)?,
            }),
            9 => Ok(Request::Answers {
                query: ConjunctiveQuery::decode(r)?,
                database: Structure::decode(r)?,
                offset: u64::decode(r)?,
                limit: u64::decode(r)?,
            }),
            tag => Err(DecodeError::BadTag {
                what: "Request",
                tag,
            }),
        }
    }
}

/// Why the server rejected a request (see [`Response::Error`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The payload did not decode as a request (offset attached).
    Malformed,
    /// The in-flight queue is full — back off and retry (admission
    /// control / backpressure).
    Busy,
    /// The request named a query id this server never issued.
    UnknownQueryId,
    /// The server is draining; no new work is admitted.
    ShuttingDown,
    /// The request was admitted but its execution failed.
    Internal,
}

impl Encode for ErrorCode {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            ErrorCode::Malformed => 0,
            ErrorCode::Busy => 1,
            ErrorCode::UnknownQueryId => 2,
            ErrorCode::ShuttingDown => 3,
            ErrorCode::Internal => 4,
        });
    }
}

impl Decode for ErrorCode {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.read_u8()? {
            0 => Ok(ErrorCode::Malformed),
            1 => Ok(ErrorCode::Busy),
            2 => Ok(ErrorCode::UnknownQueryId),
            3 => Ok(ErrorCode::ShuttingDown),
            4 => Ok(ErrorCode::Internal),
            tag => Err(DecodeError::BadTag {
                what: "ErrorCode",
                tag,
            }),
        }
    }
}

/// Service-level counters (what the engine's [`PrepStats`] /
/// [`CacheStats`] don't see: connections, admission, coalescing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerCounters {
    /// Connections accepted and served.
    pub connections_accepted: u64,
    /// Connections refused at the door (connection limit).
    pub connections_rejected: u64,
    /// Requests that decoded cleanly.
    pub requests: u64,
    /// Requests refused with [`ErrorCode::Busy`] (queue full).
    pub busy_rejections: u64,
    /// Requests refused by a per-connection quota (in-flight cap or rate
    /// limit), also answered [`ErrorCode::Busy`].
    pub quota_rejections: u64,
    /// Frames rejected at the envelope (checksum, size, version, decode).
    pub frame_errors: u64,
    /// Engine fan-outs the dispatcher ran (each covers ≥ 1 request).
    pub dispatch_rounds: u64,
    /// Singleton decide/count requests that rode a shared fan-out with at
    /// least one other request (the coalescing win).
    pub coalesced_requests: u64,
}

impl Encode for ServerCounters {
    fn encode(&self, out: &mut Vec<u8>) {
        self.connections_accepted.encode(out);
        self.connections_rejected.encode(out);
        self.requests.encode(out);
        self.busy_rejections.encode(out);
        self.quota_rejections.encode(out);
        self.frame_errors.encode(out);
        self.dispatch_rounds.encode(out);
        self.coalesced_requests.encode(out);
    }
}

impl Decode for ServerCounters {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(ServerCounters {
            connections_accepted: u64::decode(r)?,
            connections_rejected: u64::decode(r)?,
            requests: u64::decode(r)?,
            busy_rejections: u64::decode(r)?,
            quota_rejections: u64::decode(r)?,
            frame_errors: u64::decode(r)?,
            dispatch_rounds: u64::decode(r)?,
            coalesced_requests: u64::decode(r)?,
        })
    }
}

/// Everything [`Request::Stats`] reports: engine preparation/cache/index
/// counters plus the service-level counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Per-query preparation work (width DPs, cores, plans loaded/saved).
    pub prep: PrepStats,
    /// Plan-cache behaviour.
    pub cache: CacheStats,
    /// Instance-index cache behaviour.
    pub index: IndexStats,
    /// Connection/admission/coalescing counters.
    pub server: ServerCounters,
}

impl Encode for ServiceStats {
    fn encode(&self, out: &mut Vec<u8>) {
        self.prep.encode(out);
        self.cache.encode(out);
        self.index.encode(out);
        self.server.encode(out);
    }
}

impl Decode for ServiceStats {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(ServiceStats {
            prep: PrepStats::decode(r)?,
            cache: CacheStats::decode(r)?,
            index: IndexStats::decode(r)?,
            server: ServerCounters::decode(r)?,
        })
    }
}

/// A server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// Answer to [`Request::Register`].
    Registered {
        /// The handle to use in [`QuerySpec::Registered`].
        id: u64,
        /// The isomorphism-invariant fingerprint of the registered query.
        fingerprint: u64,
    },
    /// Answer to [`Request::Decide`].
    Decision(EngineReport),
    /// Answer to [`Request::Count`].
    Count(CountReport),
    /// Answer to [`Request::DecideBatch`], in item order.
    DecideBatch(Vec<EngineReport>),
    /// Answer to [`Request::CountBatch`], in item order.
    CountBatch(Vec<CountReport>),
    /// Answer to [`Request::Stats`].
    Stats(ServiceStats),
    /// Acknowledgement of [`Request::Shutdown`]; the server drains and
    /// saves plans after sending this.
    ShuttingDown,
    /// The request was rejected.
    Error {
        /// Why.
        code: ErrorCode,
        /// Human-readable detail (also logged server-side).
        message: String,
        /// For [`ErrorCode::Malformed`]: the payload byte offset where the
        /// decoder failed (from [`DecodeErrorAt`]).
        offset: Option<u64>,
    },
    /// Answer to [`Request::CountAnswers`] (protocol version 4).
    AnswerCount(AnswerCountReport),
    /// Answer to [`Request::Answers`] (protocol version 4).
    Answers(AnswerPage),
}

impl Encode for Response {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Response::Pong => out.push(0),
            Response::Registered { id, fingerprint } => {
                out.push(1);
                id.encode(out);
                fingerprint.encode(out);
            }
            Response::Decision(report) => {
                out.push(2);
                report.encode(out);
            }
            Response::Count(report) => {
                out.push(3);
                report.encode(out);
            }
            Response::DecideBatch(reports) => {
                out.push(4);
                reports.encode(out);
            }
            Response::CountBatch(reports) => {
                out.push(5);
                reports.encode(out);
            }
            Response::Stats(stats) => {
                out.push(6);
                stats.encode(out);
            }
            Response::ShuttingDown => out.push(7),
            Response::Error {
                code,
                message,
                offset,
            } => {
                out.push(8);
                code.encode(out);
                message.encode(out);
                offset.encode(out);
            }
            Response::AnswerCount(report) => {
                out.push(9);
                report.encode(out);
            }
            Response::Answers(page) => {
                out.push(10);
                page.encode(out);
            }
        }
    }
}

impl Decode for Response {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.read_u8()? {
            0 => Ok(Response::Pong),
            1 => Ok(Response::Registered {
                id: u64::decode(r)?,
                fingerprint: u64::decode(r)?,
            }),
            2 => Ok(Response::Decision(EngineReport::decode(r)?)),
            3 => Ok(Response::Count(CountReport::decode(r)?)),
            4 => Ok(Response::DecideBatch(Vec::decode(r)?)),
            5 => Ok(Response::CountBatch(Vec::decode(r)?)),
            6 => Ok(Response::Stats(ServiceStats::decode(r)?)),
            7 => Ok(Response::ShuttingDown),
            8 => Ok(Response::Error {
                code: ErrorCode::decode(r)?,
                message: String::decode(r)?,
                offset: Option::decode(r)?,
            }),
            9 => Ok(Response::AnswerCount(AnswerCountReport::decode(r)?)),
            10 => Ok(Response::Answers(AnswerPage::decode(r)?)),
            tag => Err(DecodeError::BadTag {
                what: "Response",
                tag,
            }),
        }
    }
}

/// Encode a request and frame it onto `w`.
pub fn write_request(w: &mut impl Write, request: &Request) -> std::io::Result<()> {
    write_frame(w, &encode_to_vec(request))
}

/// Encode a response and frame it onto `w`.
pub fn write_response(w: &mut impl Write, response: &Response) -> std::io::Result<()> {
    write_frame(w, &encode_to_vec(response))
}

/// Read one frame and decode its payload as a request.  Frame-level
/// problems are `Err`; a clean frame with a malformed payload is
/// `Ok(Err(DecodeErrorAt))` — the connection survives, the offset is
/// reported.
pub fn read_request(
    r: &mut impl Read,
    max_frame_len: usize,
) -> Result<Result<Request, DecodeErrorAt>, FrameError> {
    let payload = read_frame(r, max_frame_len)?;
    Ok(decode_from_slice_at(&payload))
}

/// Read one frame and decode its payload as a response.
pub fn read_response(
    r: &mut impl Read,
    max_frame_len: usize,
) -> Result<Result<Response, DecodeErrorAt>, FrameError> {
    let payload = read_frame(r, max_frame_len)?;
    Ok(decode_from_slice_at(&payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_structures::families;

    /// The tripwire: changing the wire format (new request/response kinds,
    /// different payload layouts) requires bumping [`PROTOCOL_VERSION`],
    /// and this assertion must move with it — so the bump is a conscious,
    /// reviewed act, never a silent drift.  Version 4 added the
    /// free-variable answer requests.
    #[test]
    fn protocol_version_tripwire() {
        assert_eq!(PROTOCOL_VERSION, 4);
    }

    fn roundtrip_request(req: &Request) {
        let mut wire = Vec::new();
        write_request(&mut wire, req).unwrap();
        let back = read_request(&mut wire.as_slice(), DEFAULT_MAX_FRAME_LEN)
            .expect("frame ok")
            .expect("payload decodes");
        assert_eq!(&back, req);
    }

    fn roundtrip_response(resp: &Response) {
        let mut wire = Vec::new();
        write_response(&mut wire, resp).unwrap();
        let back = read_response(&mut wire.as_slice(), DEFAULT_MAX_FRAME_LEN)
            .expect("frame ok")
            .expect("payload decodes");
        assert_eq!(&back, resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(&Request::Ping);
        roundtrip_request(&Request::Register {
            query: families::star(3),
        });
        roundtrip_request(&Request::Decide {
            query: QuerySpec::Registered(42),
            database: families::clique(4),
        });
        roundtrip_request(&Request::Count {
            query: QuerySpec::Inline(families::path(4)),
            database: families::clique(3),
        });
        roundtrip_request(&Request::DecideBatch {
            items: vec![
                (QuerySpec::Registered(0), families::clique(3)),
                (QuerySpec::Inline(families::cycle(5)), families::grid(2, 2)),
            ],
        });
        roundtrip_request(&Request::CountBatch { items: Vec::new() });
        roundtrip_request(&Request::Stats);
        roundtrip_request(&Request::Shutdown);
        let mut query = ConjunctiveQuery::from_structure(&families::path(3));
        let first = query.variables()[0].clone();
        query.mark_free(first).unwrap();
        roundtrip_request(&Request::CountAnswers {
            query: query.clone(),
            database: families::clique(3),
        });
        roundtrip_request(&Request::Answers {
            query,
            database: families::clique(3),
            offset: 2,
            limit: 16,
        });
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_response(&Response::Pong);
        roundtrip_response(&Response::Registered {
            id: 7,
            fingerprint: 0xdead_beef,
        });
        roundtrip_response(&Response::Stats(ServiceStats::default()));
        roundtrip_response(&Response::ShuttingDown);
        roundtrip_response(&Response::Error {
            code: ErrorCode::Malformed,
            message: "bad tag 250 for Request".to_string(),
            offset: Some(17),
        });
        roundtrip_response(&Response::Error {
            code: ErrorCode::Busy,
            message: String::new(),
            offset: None,
        });
    }

    #[test]
    fn engine_reports_roundtrip_through_the_wire() {
        // Obtain real reports from an in-process engine so every enum
        // variant path is a value the service will actually ship.
        let engine = cq_core::Engine::new(cq_core::EngineConfig::default());
        let report = engine.solve(&families::path(3), &families::clique(3));
        roundtrip_response(&Response::Decision(report.clone()));
        roundtrip_response(&Response::DecideBatch(vec![report.clone(), report]));
        let count = engine.count_instance(&families::path(3), &families::clique(3));
        roundtrip_response(&Response::Count(count.clone()));
        roundtrip_response(&Response::CountBatch(vec![count]));
        let mut query = ConjunctiveQuery::from_structure(&families::path(3));
        let first = query.variables()[0].clone();
        query.mark_free(first).unwrap();
        let report = engine.count_answers(&query, &families::clique(3));
        roundtrip_response(&Response::AnswerCount(report));
        let page = engine.answers(&query, &families::clique(3), 0, 2);
        assert!(!page.rows.is_empty());
        roundtrip_response(&Response::Answers(page));
    }

    #[test]
    fn oversized_frames_rejected_before_allocation() {
        // A header claiming u32::MAX bytes with no body: the reader must
        // refuse at the header, never sizing a buffer from the claim.
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        match read_frame(&mut wire.as_slice(), DEFAULT_MAX_FRAME_LEN) {
            Err(FrameError::TooLarge { declared, .. }) => {
                assert_eq!(declared, u64::from(u32::MAX));
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_frames_rejected() {
        let mut wire = Vec::new();
        write_request(&mut wire, &Request::Ping).unwrap();
        // Flip a payload byte: checksum must catch it.
        let mut flipped = wire.clone();
        flipped[4] ^= 0x01; // version byte inside the body
        assert!(matches!(
            read_frame(&mut flipped.as_slice(), DEFAULT_MAX_FRAME_LEN),
            Err(FrameError::BadChecksum)
        ));
        // Truncations: every prefix is Closed (empty) or Truncated.
        for len in 0..wire.len() {
            match read_frame(&mut wire[..len].as_ref(), DEFAULT_MAX_FRAME_LEN) {
                Err(FrameError::Closed) => assert_eq!(len, 0),
                Err(FrameError::Truncated) => assert!(len > 0),
                other => panic!("prefix of {len} bytes: expected EOF error, got {other:?}"),
            }
        }
        // A wrong version resealed behind a valid checksum.
        let mut vers = wire.clone();
        vers[4] = 9;
        let body_len = u32::from_le_bytes(vers[..4].try_into().unwrap()) as usize;
        let seal = fnv1a64(&vers[4..4 + body_len]).to_le_bytes();
        let cs_at = 4 + body_len;
        vers[cs_at..cs_at + 8].copy_from_slice(&seal);
        assert!(matches!(
            read_frame(&mut vers.as_slice(), DEFAULT_MAX_FRAME_LEN),
            Err(FrameError::UnsupportedVersion { found: 9 })
        ));
        // Zero-length body.
        let mut empty = Vec::new();
        empty.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            read_frame(&mut empty.as_slice(), DEFAULT_MAX_FRAME_LEN),
            Err(FrameError::Empty)
        ));
    }

    #[test]
    fn malformed_payload_reports_the_offset() {
        // A clean frame whose payload is a bad request tag: frame Ok,
        // decode Err with offset 1 (just past the tag byte).
        let mut wire = Vec::new();
        write_frame(&mut wire, &[250]).unwrap();
        let result = read_request(&mut wire.as_slice(), DEFAULT_MAX_FRAME_LEN).expect("frame ok");
        let err = result.expect_err("payload must not decode");
        assert_eq!(
            err.error,
            DecodeError::BadTag {
                what: "Request",
                tag: 250
            }
        );
        assert_eq!(err.offset, 1);
    }
}
