//! In-process integration tests for the query service: a real server on a
//! loopback socket, driven by the client library, checked against an
//! in-process engine.

use cq_core::{Engine, EngineConfig};
use cq_service::Server;
use cq_service::{Client, ClientError, ErrorCode, QuerySpec, Request, Response, ServiceConfig};
use cq_structures::families;
use cq_workloads::{counting_traffic, repeated_query_traffic};
use std::time::Duration;

/// Every test client reads with a deadline so a wedged server fails the
/// test instead of hanging the suite.
const TEST_TIMEOUT: Duration = Duration::from_secs(30);

fn test_config() -> ServiceConfig {
    ServiceConfig {
        io_timeout: Duration::from_secs(2),
        ..ServiceConfig::default()
    }
}

fn start_server(config: ServiceConfig) -> Server {
    let engine = Engine::new(EngineConfig::default());
    Server::start(engine, "127.0.0.1:0", config).expect("server boots on a loopback port")
}

fn connect(server: &Server) -> Client {
    Client::connect_with_timeout(server.local_addr(), Some(TEST_TIMEOUT)).expect("client connects")
}

#[test]
fn decide_and_count_agree_with_the_in_process_engine() {
    let server = start_server(test_config());
    let mut client = connect(&server);
    let oracle = Engine::new(EngineConfig::default());

    let workload = repeated_query_traffic(2, 14, 2, 5);
    for &(q, d) in &workload.trace {
        let got = client
            .decide(
                QuerySpec::Inline(workload.queries[q].clone()),
                &workload.databases[d],
            )
            .expect("decide");
        let want = oracle.solve(&workload.queries[q], &workload.databases[d]);
        assert_eq!(
            got, want,
            "server and in-process engine must agree bit for bit"
        );
    }

    let counting = counting_traffic(&[3, 4], 1, 9);
    for (i, &(q, d)) in counting.trace.iter().enumerate() {
        let got = client
            .count(
                QuerySpec::Inline(counting.queries[q].clone()),
                &counting.databases[d],
            )
            .expect("count");
        assert_eq!(got.count, counting.expected[i], "closed form");
        let want = oracle.count_instance(&counting.queries[q], &counting.databases[d]);
        assert_eq!(got, want);
    }
    server.shutdown().expect("graceful shutdown");
}

#[test]
fn registered_handles_answer_like_inline_queries() {
    let server = start_server(test_config());
    let mut client = connect(&server);
    let query = families::cycle(5);
    let database = cq_workloads::random_graph_structure(16, 0.3, 3);

    let (id, fingerprint) = client.register(&query).expect("register");
    let by_handle = client
        .decide(QuerySpec::Registered(id), &database)
        .expect("decide by handle");
    let inline = client
        .decide(QuerySpec::Inline(query.clone()), &database)
        .expect("decide inline");
    assert_eq!(by_handle, inline);
    assert_ne!(
        fingerprint, 0,
        "fingerprints are non-degenerate in practice"
    );

    // Batches accept a mix of handles and inline queries.
    let batch = client
        .decide_batch(vec![
            (QuerySpec::Registered(id), database.clone()),
            (QuerySpec::Inline(query), database.clone()),
        ])
        .expect("mixed batch");
    assert_eq!(batch.len(), 2);
    assert_eq!(batch[0], batch[1]);
    server.shutdown().expect("graceful shutdown");
}

#[test]
fn answers_over_the_wire_agree_with_the_in_process_engine() {
    let server = start_server(test_config());
    let mut client = connect(&server);
    let oracle = Engine::new(EngineConfig::default());

    let mut query = cq_structures::ConjunctiveQuery::from_structure(&families::path(4));
    for v in [query.variables()[0].clone(), query.variables()[3].clone()] {
        query.mark_free(v).expect("path variables exist");
    }
    let database = cq_workloads::random_graph_structure(9, 0.35, 5);

    let report = client.count_answers(&query, &database).expect("count");
    assert_eq!(report, oracle.count_answers(&query, &database));
    assert!(report.answers > 0, "a path maps into a random graph");

    // Page through the whole enumeration and reassemble it.
    let mut rows = Vec::new();
    let mut offset = 0u64;
    loop {
        let page = client
            .answers(&query, &database, offset, 3)
            .expect("answers page");
        assert_eq!(page, oracle.answers(&query, &database, offset, 3));
        offset += page.rows.len() as u64;
        rows.extend(page.rows);
        if !page.has_more {
            break;
        }
    }
    assert_eq!(rows.len() as u64, report.answers, "pages tile the answers");

    // The server enforces the page-size ceiling; the connection survives.
    match client.answers(&query, &database, 0, cq_service::MAX_ANSWER_PAGE_LIMIT + 1) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected a Malformed error, got {other:?}"),
    }
    client
        .ping()
        .expect("connection survives an oversized limit");

    // A malformed query (one relation, two arities) is refused with a typed
    // error at the boundary — the engine's panic never reaches the wire.
    let mut bad = cq_structures::ConjunctiveQuery::new();
    bad.atom("R", &["x"]).atom("R", &["x", "y"]);
    match client.count_answers(&bad, &database) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected a Malformed error, got {other:?}"),
    }
    client
        .ping()
        .expect("connection survives a malformed query");
    server.shutdown().expect("graceful shutdown");
}

#[test]
fn unknown_query_id_is_an_error_and_the_connection_survives() {
    let server = start_server(test_config());
    let mut client = connect(&server);
    let database = cq_workloads::random_graph_structure(8, 0.3, 1);

    match client.decide(QuerySpec::Registered(999), &database) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::UnknownQueryId),
        other => panic!("expected an UnknownQueryId error, got {other:?}"),
    }
    // The error was request-level, not connection-level.
    client.ping().expect("connection survives an unknown id");
    server.shutdown().expect("graceful shutdown");
}

#[test]
fn pipelined_responses_come_back_in_request_order() {
    let server = start_server(test_config());
    let mut client = connect(&server);
    let query = families::star(3);
    let database = cq_workloads::random_graph_structure(10, 0.4, 2);

    // Ship a window of heterogeneous requests without reading, then
    // collect: the response kinds must replay the request order exactly.
    client.send(&Request::Ping).expect("send");
    client
        .send(&Request::Decide {
            query: QuerySpec::Inline(query.clone()),
            database: database.clone(),
        })
        .expect("send");
    client.send(&Request::Stats).expect("send");
    client
        .send(&Request::Count {
            query: QuerySpec::Inline(query),
            database,
        })
        .expect("send");
    client.send(&Request::Ping).expect("send");

    assert!(matches!(client.receive().expect("r0"), Response::Pong));
    assert!(matches!(
        client.receive().expect("r1"),
        Response::Decision(_)
    ));
    assert!(matches!(client.receive().expect("r2"), Response::Stats(_)));
    assert!(matches!(client.receive().expect("r3"), Response::Count(_)));
    assert!(matches!(client.receive().expect("r4"), Response::Pong));
    server.shutdown().expect("graceful shutdown");
}

#[test]
fn connections_over_the_limit_are_refused_at_the_door() {
    let server = start_server(ServiceConfig {
        max_connections: 1,
        ..test_config()
    });
    let mut first = connect(&server);
    first.ping().expect("the admitted connection works");

    // The second connection gets an unsolicited Busy error frame, then
    // EOF — read it without sending anything.
    let mut second = connect(&server);
    match second.receive() {
        Ok(Response::Error { code, .. }) => assert_eq!(code, ErrorCode::Busy),
        other => panic!("expected a Busy refusal, got {other:?}"),
    }
    drop(second);

    // Freeing the slot readmits: poll until the server notices the drop.
    first.ping().expect("the admitted connection is unaffected");
    drop(first);
    let deadline = std::time::Instant::now() + TEST_TIMEOUT;
    loop {
        let mut retry = connect(&server);
        match retry.ping() {
            Ok(()) => break,
            Err(_) if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(20))
            }
            Err(e) => panic!("slot never freed: {e}"),
        }
    }
    server.shutdown().expect("graceful shutdown");
}

#[test]
fn in_flight_quota_answers_busy_and_keeps_the_connection() {
    let server = start_server(ServiceConfig {
        max_in_flight_per_connection: 1,
        ..test_config()
    });
    let mut client = connect(&server);
    let query = families::cycle(5);
    let database = cq_workloads::random_graph_structure(120, 0.15, 7);

    // An 8-deep pipeline against a 1-slot quota: the first request is
    // always admitted (nothing in flight yet); anything decoded while an
    // earlier answer is still owed bounces with a typed Busy.
    const WINDOW: usize = 8;
    for _ in 0..WINDOW {
        client
            .send(&Request::Count {
                query: QuerySpec::Inline(query.clone()),
                database: database.clone(),
            })
            .expect("send");
    }
    let mut answered = 0u32;
    let mut busy = 0u32;
    for i in 0..WINDOW {
        match client.receive().expect("in-order response") {
            Response::Count(_) => answered += 1,
            Response::Error { code, .. } => {
                assert_eq!(code, ErrorCode::Busy, "quota refusals are typed Busy");
                busy += 1;
            }
            other => panic!("response {i}: expected Count or Busy, got {other:?}"),
        }
    }
    assert_eq!(
        answered + busy,
        WINDOW as u32,
        "every request gets an answer"
    );
    assert!(answered >= 1, "the first request is always admitted");
    assert!(
        busy >= 1,
        "an 8-deep pipeline against a 1-slot quota must overflow"
    );
    // The refusals were request-level: the connection still works, and the
    // freed quota slot admits engine work again.
    client.ping().expect("connection survives the quota");
    client
        .count(QuerySpec::Inline(query), &database)
        .expect("quota slot freed after the pipeline drained");
    assert!(
        server.stats().server.quota_rejections >= u64::from(busy),
        "quota refusals are counted separately from queue-full Busy"
    );
    server.shutdown().expect("graceful shutdown");
}

#[test]
fn rate_quota_answers_busy_and_refills() {
    let server = start_server(ServiceConfig {
        max_requests_per_second: 2,
        ..test_config()
    });
    let mut client = connect(&server);

    // Burst capacity equals the rate: of six back-to-back pings, the
    // first two are always admitted and at least one later ping must hit
    // an empty bucket (refilling 1 token takes 0.5 s at 2/s).
    for _ in 0..6 {
        client.send(&Request::Ping).expect("send");
    }
    let mut pongs = 0u32;
    let mut busy = 0u32;
    for i in 0..6 {
        match client.receive().expect("in-order response") {
            Response::Pong => pongs += 1,
            Response::Error { code, .. } => {
                assert_eq!(code, ErrorCode::Busy, "rate refusals are typed Busy");
                busy += 1;
            }
            other => panic!("response {i}: expected Pong or Busy, got {other:?}"),
        }
    }
    assert!(pongs >= 2, "the burst capacity admits the first two");
    assert!(busy >= 1, "a six-ping burst against 2/s must be throttled");
    // The bucket refills: after a full second this connection holds at
    // least one token again (sleep lower-bounds the elapsed refill time).
    std::thread::sleep(Duration::from_millis(1100));
    client
        .ping()
        .expect("the bucket refilled; same connection serves");
    assert!(server.stats().server.quota_rejections >= u64::from(busy));
    server.shutdown().expect("graceful shutdown");
}

#[test]
fn concurrent_clients_all_get_correct_answers() {
    let server = start_server(test_config());
    let addr = server.local_addr();
    let oracle = Engine::new(EngineConfig::default());
    let workload = repeated_query_traffic(2, 12, 2, 21);
    let expected: Vec<_> = workload
        .trace
        .iter()
        .map(|&(q, d)| oracle.solve(&workload.queries[q], &workload.databases[d]))
        .collect();

    let handles: Vec<_> = (0..4)
        .map(|_| {
            let workload = workload.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut client =
                    Client::connect_with_timeout(addr, Some(TEST_TIMEOUT)).expect("connect");
                for (&(q, d), want) in workload.trace.iter().zip(&expected) {
                    let got = client
                        .decide(
                            QuerySpec::Inline(workload.queries[q].clone()),
                            &workload.databases[d],
                        )
                        .expect("decide");
                    assert_eq!(&got, want);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }

    let stats = server.stats();
    assert_eq!(stats.server.connections_accepted, 4);
    assert!(
        stats.server.requests >= 4 * workload.trace.len() as u64,
        "every request was counted"
    );
    server.shutdown().expect("graceful shutdown");
}

#[test]
fn protocol_shutdown_saves_plans_and_the_next_boot_is_warm() {
    let dir = std::env::temp_dir().join(format!("cq-svc-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let store = dir.join("plans.cq");
    let _ = std::fs::remove_file(&store);

    let config = ServiceConfig {
        plan_store: Some(store.clone()),
        ..test_config()
    };
    let server = start_server(config.clone());
    assert!(
        server.warm_start().is_none(),
        "no store file yet: cold boot"
    );
    let mut client = connect(&server);
    let queries = [families::star(3), families::cycle(5), families::path(4)];
    let database = cq_workloads::random_graph_structure(12, 0.3, 8);
    let cold_answers: Vec<_> = queries
        .iter()
        .map(|q| {
            client
                .decide(QuerySpec::Inline(q.clone()), &database)
                .expect("cold decide")
        })
        .collect();

    // Remote shutdown: the ack comes back, then the server drains and the
    // local handle's shutdown() persists the plans.
    client.shutdown_server().expect("shutdown ack");
    assert!(server.is_shutting_down());
    let report = server.shutdown().expect("graceful shutdown");
    assert_eq!(report.plans_saved, queries.len() as u64);

    // Second boot: warm from the store, zero preparation work before (and
    // during) identical traffic.
    let server = start_server(config);
    let summary = server.warm_start().expect("store file exists now");
    assert_eq!(summary.loaded, queries.len() as u64);
    let boot = server.stats().prep;
    assert_eq!(boot.preparations, 0);
    assert_eq!(
        boot.treewidth_calls + boot.pathwidth_calls + boot.treedepth_calls,
        0,
        "a warm boot performs zero width DPs before the first answer"
    );
    let mut client = connect(&server);
    for (q, want) in queries.iter().zip(&cold_answers) {
        let got = client
            .decide(QuerySpec::Inline(q.clone()), &database)
            .expect("warm decide");
        assert_eq!(&got, want, "warm answers are bit-identical to cold ones");
    }
    let after = server.stats().prep;
    assert_eq!(after.preparations, 0, "warm traffic is all cache hits");
    server.shutdown().expect("second graceful shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn requests_during_drain_are_rejected_as_shutting_down() {
    let server = start_server(test_config());
    let mut client = connect(&server);
    client.ping().expect("pre-drain ping");
    server.begin_shutdown();
    // The reader may close the connection before or after answering; a
    // request-level ShuttingDown error and a transport-level close are
    // both correct. What is not correct is a hang or a normal answer.
    let database = cq_workloads::random_graph_structure(8, 0.3, 1);
    match client.decide(QuerySpec::Inline(families::star(3)), &database) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::ShuttingDown),
        Err(ClientError::Frame(_)) => {}
        Ok(_) => panic!("a drained server must not answer new work"),
        Err(other) => panic!("unexpected error kind: {other:?}"),
    }
    server.shutdown().expect("graceful shutdown");
}
