//! Hostile-wire fuzzing against a live server, in the style of the plan
//! store's `persist_corruption` suite: truncated frames, bit-flipped
//! payloads resealed behind valid checksums, hostile length prefixes, and
//! mid-frame disconnects.  The invariants under attack:
//!
//! * the server never panics and the listener never wedges — it still
//!   answers a well-formed client after every barrage;
//! * no connection slot leaks — `active_connections` returns to zero;
//! * corruption is *detected*, not absorbed: resealed garbage yields a
//!   `Malformed` error (with the decoder's byte offset), never a bogus
//!   answer.

use cq_core::{Engine, EngineConfig};
use cq_service::protocol::write_frame;
use cq_service::{Client, ErrorCode, Request, Response, Server, ServiceConfig, PROTOCOL_VERSION};
use cq_structures::codec::{encode_to_vec, fnv1a64};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Short server-side patience so mid-frame stalls drop within the test
/// budget, and short client deadlines so a wedged server fails fast.
const IO_TIMEOUT: Duration = Duration::from_millis(400);
const TEST_TIMEOUT: Duration = Duration::from_secs(30);

fn start_server() -> Server {
    let config = ServiceConfig {
        io_timeout: IO_TIMEOUT,
        ..ServiceConfig::default()
    };
    Server::start(Engine::new(EngineConfig::default()), "127.0.0.1:0", config)
        .expect("server boots")
}

/// Prove the listener is alive: a fresh well-formed client gets a pong.
fn assert_still_serving(server: &Server) {
    let mut client =
        Client::connect_with_timeout(server.local_addr(), Some(TEST_TIMEOUT)).expect("connect");
    client.ping().expect("server still answers after hostility");
}

/// Wait for every connection slot to be released.
fn assert_slots_drain(server: &Server) {
    let deadline = Instant::now() + TEST_TIMEOUT;
    while server.active_connections() > 0 {
        assert!(
            Instant::now() < deadline,
            "a hostile connection leaked its slot ({} still active)",
            server.active_connections()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn raw_connect(server: &Server) -> TcpStream {
    let stream = TcpStream::connect(server.local_addr()).expect("raw connect");
    stream
        .set_read_timeout(Some(TEST_TIMEOUT))
        .expect("read timeout");
    stream
}

/// A well-formed ping frame as raw bytes (the template the attacks mutate).
fn ping_frame() -> Vec<u8> {
    let mut bytes = Vec::new();
    write_frame(&mut bytes, &encode_to_vec(&Request::Ping)).expect("encode to vec");
    bytes
}

/// Rebuild a frame around `body` (version byte included) with a *valid*
/// checksum — the reseal step that lets payload corruption past the
/// envelope integrity check.
fn seal(body: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(4 + body.len() + 8);
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(body);
    frame.extend_from_slice(&fnv1a64(body).to_le_bytes());
    frame
}

/// Read one response frame's worth of bytes and decode it leniently —
/// enough to check the error code without re-implementing the client.
fn read_error_response(stream: &mut TcpStream) -> Response {
    let mut client_view =
        cq_service::protocol::read_response(stream, cq_service::DEFAULT_MAX_FRAME_LEN);
    match &mut client_view {
        Ok(Ok(response)) => response.clone(),
        other => panic!("expected a decodable response frame, got {other:?}"),
    }
}

#[test]
fn truncated_frames_at_every_boundary_never_wedge_the_server() {
    let server = start_server();
    let template = ping_frame();
    // Cut the frame at every possible byte boundary: inside the length
    // prefix, inside the body, inside the checksum.
    for cut in 0..template.len() {
        let mut stream = raw_connect(&server);
        stream.write_all(&template[..cut]).expect("partial write");
        // Mid-frame disconnect.
        drop(stream);
    }
    assert_slots_drain(&server);
    assert_still_serving(&server);
    let stats = server.stats();
    assert_eq!(
        stats.server.requests, 1,
        "no truncated frame was mistaken for a request"
    );
    server.shutdown().expect("graceful shutdown");
}

#[test]
fn bitflips_resealed_behind_valid_checksums_are_rejected_with_offsets() {
    let server = start_server();
    let good_payload = encode_to_vec(&Request::Ping);
    // A one-byte payload (the Ping tag). Flip it to every wrong tag value:
    // the checksum is resealed, so the envelope passes and the request
    // decoder must be the layer that rejects it.
    let mut rejected = 0;
    for tag in [8u8, 9, 42, 127, 250, 255] {
        let mut body = Vec::with_capacity(1 + good_payload.len());
        body.push(PROTOCOL_VERSION);
        body.push(tag);
        let mut stream = raw_connect(&server);
        stream.write_all(&seal(&body)).expect("send resealed frame");
        match read_error_response(&mut stream) {
            Response::Error {
                code,
                offset: Some(offset),
                ..
            } => {
                assert_eq!(code, ErrorCode::Malformed);
                // The bad tag is the first payload byte; the reader
                // consumed it before rejecting.
                assert_eq!(offset, 1, "the decoder reports where it gave up");
                rejected += 1;
            }
            other => panic!("resealed garbage must yield Malformed+offset, got {other:?}"),
        }
        // A payload-level rejection keeps the connection: framing is
        // still in sync, so a good request on the same socket works.
        stream.write_all(&ping_frame()).expect("follow-up ping");
        assert!(matches!(read_error_response(&mut stream), Response::Pong));
    }
    assert_eq!(rejected, 6);
    assert_slots_drain(&server);
    assert_still_serving(&server);
    server.shutdown().expect("graceful shutdown");
}

#[test]
fn corrupt_checksums_close_the_connection_but_not_the_listener() {
    let server = start_server();
    let template = ping_frame();
    // Flip one bit in every byte position (length prefix excluded — those
    // are the hostile-length tests) without resealing.
    for pos in 4..template.len() {
        let mut frame = template.clone();
        frame[pos] ^= 0x10;
        let mut stream = raw_connect(&server);
        stream.write_all(&frame).expect("send corrupt frame");
        // The server answers Malformed (checksum/version) and closes, or
        // just closes if the flip landed in the checksum tail after a
        // valid... — either way the next read reaches EOF without a Pong.
        let mut rest = Vec::new();
        let _ = stream.read_to_end(&mut rest);
        if !rest.is_empty() {
            // Whatever came back decodes as an error response, never Pong.
            match cq_service::protocol::read_response(
                &mut std::io::Cursor::new(rest),
                cq_service::DEFAULT_MAX_FRAME_LEN,
            ) {
                Ok(Ok(Response::Error { code, .. })) => {
                    assert_eq!(code, ErrorCode::Malformed)
                }
                Ok(Ok(other)) => panic!("corrupt frame answered with {other:?}"),
                _ => {}
            }
        }
    }
    assert_slots_drain(&server);
    assert_still_serving(&server);
    server.shutdown().expect("graceful shutdown");
}

#[test]
fn hostile_length_prefixes_are_refused_before_allocation() {
    let server = start_server();
    // Declared sizes chosen to bankrupt a naive `Vec::with_capacity`:
    // if the server allocated what the prefix claims, this test would OOM
    // or crash it; instead each gets a Malformed error or a clean close.
    for declared in [u32::MAX, u32::MAX - 1, 1 << 30, (1 << 24) + 1, 0] {
        let mut stream = raw_connect(&server);
        stream
            .write_all(&declared.to_le_bytes())
            .expect("hostile prefix");
        // Feed a few bytes of "body" so undersized declarations also get
        // exercised past the header.
        let _ = stream.write_all(&[0u8; 16]);
        let mut rest = Vec::new();
        let _ = stream.read_to_end(&mut rest);
        if !rest.is_empty() {
            match cq_service::protocol::read_response(
                &mut std::io::Cursor::new(rest),
                cq_service::DEFAULT_MAX_FRAME_LEN,
            ) {
                Ok(Ok(Response::Error { code, .. })) => {
                    assert_eq!(code, ErrorCode::Malformed)
                }
                Ok(Ok(other)) => panic!("hostile length answered with {other:?}"),
                _ => {}
            }
        }
    }
    assert_slots_drain(&server);
    assert_still_serving(&server);
    server.shutdown().expect("graceful shutdown");
}

#[test]
fn a_mid_frame_stall_is_dropped_after_the_io_timeout() {
    let server = start_server();
    let template = ping_frame();
    let mut stream = raw_connect(&server);
    // Start a frame, then go silent: a slow-loris hold on the slot.
    stream.write_all(&template[..2]).expect("stall mid-header");
    let start = Instant::now();
    // The server must cut us off: the next read reaches EOF (or reset)
    // rather than blocking forever.
    let mut rest = Vec::new();
    let _ = stream.read_to_end(&mut rest);
    let waited = start.elapsed();
    assert!(
        waited < TEST_TIMEOUT,
        "the stalled connection was not dropped"
    );
    assert_slots_drain(&server);
    // An idle client that has NOT started a frame is fine for longer than
    // the io_timeout — the deadline arms per frame, not per connection.
    let mut idle = Client::connect_with_timeout(server.local_addr(), Some(TEST_TIMEOUT))
        .expect("idle connect");
    idle.ping().expect("first ping");
    std::thread::sleep(IO_TIMEOUT * 3);
    idle.ping()
        .expect("an idle connection survives between frames");
    drop(idle);
    assert_still_serving(&server);
    server.shutdown().expect("graceful shutdown");
}

#[test]
fn random_garbage_barrage_leaves_the_server_standing() {
    let server = start_server();
    // A deterministic xorshift byte stream — no external RNG needed.
    let mut state = 0x243F_6A88_85A3_08D3_u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for round in 0..64 {
        let len = (next() % 200) as usize;
        let mut bytes = Vec::with_capacity(len);
        for _ in 0..len {
            bytes.push(next() as u8);
        }
        let mut stream = raw_connect(&server);
        let _ = stream.write_all(&bytes);
        if round % 2 == 0 {
            // Half the time, disconnect immediately; the other half, wait
            // for the server's verdict so both teardown orders happen.
            drop(stream);
        } else {
            let mut rest = Vec::new();
            let _ = stream.read_to_end(&mut rest);
        }
    }
    assert_slots_drain(&server);
    assert_still_serving(&server);
    server.shutdown().expect("graceful shutdown");
}
